"""Fault tolerance: health policy, monitor, chaos plan, recovery.

Serial-mode coverage of the fault-tolerance layer — deterministic,
fast, no real processes.  Process-mode chaos (real worker kills,
hangs, slab accounting) lives in ``test_chaos.py``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import telemetry
from repro.errors import ConfigurationError, ExecutionError
from repro.nn.topology import parse_topology
from repro.params.crossbar import CrossbarParams
from repro.params.memory import MemoryOrganization
from repro.params.prime import PrimeConfig
from repro.params.reram import PT_TIO2_DEVICE
from repro.resilience import ResiliencePolicy
from repro.serve import ServeConfig, ServingRuntime
from repro.serve.dispatcher import (
    pool_timeout_s,
    program_state,
    reprogram_state,
    run_programmed,
)
from repro.serve.health import (
    FaultEvent,
    FaultPlan,
    HealthPolicy,
    ReplicaHealthMonitor,
    apply_drift,
)

pytestmark = pytest.mark.serve

NOISE_FREE = dataclasses.replace(
    PT_TIO2_DEVICE, programming_sigma=0.0, read_noise_sigma=0.0
)
SMALL_ORG = MemoryOrganization(
    subarrays_per_bank=8,
    mats_per_subarray=16,
    mat_rows=32,
    mat_cols=32,
)
TOPOLOGY = parse_topology("serve-tiny", "24-20-6")


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    yield
    telemetry.disable()


def _small_config(device=NOISE_FREE) -> PrimeConfig:
    return PrimeConfig(
        crossbar=CrossbarParams(
            rows=32, cols=32, sense_amps=8, device=device
        ),
        organization=SMALL_ORG,
        resilience=ResiliencePolicy(),
    )


@pytest.fixture(scope="module")
def network():
    return TOPOLOGY.build(rng=np.random.default_rng(2))


@pytest.fixture(scope="module")
def samples():
    return np.random.default_rng(11).standard_normal((20, 24))


#: Zero backoff keeps the serial recovery tests instant.
FAST = dict(backoff_base_s=0.0)


def _runtime(network, samples, **kw):
    serve_kw = dict(mode="serial", max_batch=5)
    serve_kw.update(kw.pop("serve", {}))
    defaults = dict(
        config=_small_config(),
        serve_config=ServeConfig(**serve_kw),
        calibration=samples,
        max_replicas=2,
    )
    defaults.update(kw)
    return ServingRuntime(network, TOPOLOGY, **defaults)


class TestHealthPolicy:
    def test_defaults_validate(self):
        HealthPolicy()

    @pytest.mark.parametrize(
        "kw",
        [
            dict(batch_timeout_s=0.0),
            dict(batch_timeout_s=-1.0),
            dict(max_retries=-1),
            dict(backoff_base_s=-0.1),
            dict(backoff_factor=0.5),
            dict(suspect_limit=0),
            dict(latency_outlier_factor=1.0),
            dict(max_restarts_per_replica=-1),
            dict(probe_interval_batches=0),
            dict(drift_threshold=0.0),
            dict(on_exhausted="explode"),
        ],
    )
    def test_bad_knobs_rejected(self, kw):
        with pytest.raises(ConfigurationError):
            HealthPolicy(**kw)

    def test_none_timeout_disables_deadline(self):
        assert HealthPolicy(batch_timeout_s=None).batch_timeout_s is None


class TestReplicaHealthMonitor:
    def test_routable_shrinks_under_quarantine(self):
        monitor = ReplicaHealthMonitor(3, HealthPolicy())
        assert monitor.routable() == [0, 1, 2]
        monitor.quarantine(1)
        assert monitor.routable() == [0, 2]
        monitor.revive(1)
        assert monitor.routable() == [0, 1, 2]
        assert monitor.replicas[1].restarts == 1

    def test_outlier_needs_baseline_and_streak(self):
        policy = HealthPolicy(
            suspect_limit=2, latency_outlier_factor=10.0
        )
        monitor = ReplicaHealthMonitor(1, policy)
        # First observation seeds the EMA; it can never be an outlier.
        assert monitor.record_success(0, 100.0) is False
        # One outlier is a suspect, not yet a restart trigger.
        assert monitor.record_success(0, 5000.0) is False
        assert monitor.replicas[0].suspect_count == 1
        # The second consecutive outlier crosses suspect_limit.
        assert monitor.record_success(0, 5000.0) is True
        # A clean batch resets the streak.
        monitor.record_success(0, 100.0)
        assert monitor.replicas[0].suspect_count == 0

    def test_outliers_do_not_poison_the_ema(self):
        monitor = ReplicaHealthMonitor(1, HealthPolicy())
        monitor.record_success(0, 1.0)
        baseline = monitor.replicas[0].ema_exec_s
        monitor.record_success(0, 1000.0)  # outlier
        assert monitor.replicas[0].ema_exec_s == baseline

    def test_restart_budget_then_retire(self):
        policy = HealthPolicy(max_restarts_per_replica=2)
        monitor = ReplicaHealthMonitor(2, policy)
        for _ in range(2):
            assert monitor.can_restart(0)
            monitor.quarantine(0)
            monitor.revive(0)
        assert not monitor.can_restart(0)
        monitor.retire(0)
        assert monitor.routable() == [1]
        monitor.retire(1)
        assert monitor.all_unhealthy

    def test_resize_grows_and_truncates(self):
        monitor = ReplicaHealthMonitor(2, HealthPolicy())
        monitor.resize(4)
        assert len(monitor) == 4
        monitor.resize(1)
        assert len(monitor) == 1
        with pytest.raises(ConfigurationError):
            monitor.resize(0)


class TestFaultPlan:
    def test_events_fire_exactly_once(self):
        plan = FaultPlan.of(
            FaultEvent(batch_index=2, kind="kill"),
            FaultEvent(batch_index=5, kind="slow", duration_s=1.0),
        )
        assert plan.remaining == 2
        assert plan.take(0) is None
        event = plan.take(2)
        assert event is not None and event.kind == "kill"
        assert plan.take(2) is None  # fired, gone
        assert plan.remaining == 1
        assert [e.batch_index for e in plan.fired] == [2]

    def test_duplicate_index_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.of(
                FaultEvent(batch_index=1, kind="kill"),
                FaultEvent(batch_index=1, kind="kill"),
            )

    @pytest.mark.parametrize(
        "kw",
        [
            dict(batch_index=-1, kind="kill"),
            dict(batch_index=0, kind="segfault"),
            dict(batch_index=0, kind="hang"),  # needs duration_s
            dict(batch_index=0, kind="slow", duration_s=0.0),
            dict(batch_index=0, kind="drift"),  # needs magnitude
        ],
    )
    def test_bad_events_rejected(self, kw):
        with pytest.raises(ConfigurationError):
            FaultEvent(**kw)

    def test_payload_shapes(self):
        assert FaultEvent(0, "kill").payload == ("kill",)
        assert FaultEvent(0, "hang", duration_s=2.0).payload == (
            "hang",
            2.0,
        )
        assert FaultEvent(
            0, "drift", magnitude=0.5, seed=9
        ).payload == ("drift", 0.5, 9)


class TestCrashRecovery:
    """Serial-mode kill/hang → retry; results stay bit-identical."""

    def test_kill_retried_bit_identical_noise_off(
        self, network, samples
    ):
        plan = FaultPlan.of(FaultEvent(batch_index=1, kind="kill"))
        with _runtime(
            network,
            samples,
            health=HealthPolicy(**FAST),
            fault_plan=plan,
        ) as runtime:
            served = runtime.serve(samples)
            reference = runtime.reference(samples)
            assert plan.remaining == 0
            assert len(runtime.restarts) == 1
            assert runtime.restarts[0].reason == "crash"
            assert runtime.restarts[0].cost_s > 0.0
        np.testing.assert_array_equal(served, reference)

    def test_kill_retried_bit_identical_noise_on(
        self, network, samples
    ):
        """The retried batch reuses its original noise seed, so even the
        seeded-noise stream is unchanged by the crash."""
        plan = FaultPlan.of(FaultEvent(batch_index=1, kind="kill"))
        config = _small_config(device=PT_TIO2_DEVICE)
        with _runtime(
            network,
            samples,
            config=config,
            serve=dict(
                mode="serial", max_batch=10, with_noise=True, seed=7
            ),
            health=HealthPolicy(**FAST),
            fault_plan=plan,
        ) as runtime:
            served = runtime.serve(samples)
            want = np.concatenate(
                [
                    runtime.reference(samples[:10], batch_index=0),
                    runtime.reference(samples[10:], batch_index=1),
                ]
            )
            assert plan.remaining == 0
        np.testing.assert_array_equal(served, want)

    def test_retry_counter_and_monitor_bookkeeping(
        self, network, samples
    ):
        telemetry.enable()
        plan = FaultPlan.of(FaultEvent(batch_index=0, kind="kill"))
        with _runtime(
            network,
            samples,
            health=HealthPolicy(**FAST),
            fault_plan=plan,
        ) as runtime:
            runtime.serve(samples)
            assert runtime.monitor.replicas[0].restarts == 1
        assert (
            telemetry.counter_value(
                "serve.dispatch.retry",
                reason="crash",
                tenant=runtime.tenant,
            )
            == 1
        )
        assert (
            telemetry.counter_value(
                "serve.replica.restarts",
                reason="crash",
                tenant=runtime.tenant,
            )
            == 1
        )

    def test_exhausted_retries_raise_by_default(
        self, network, samples
    ):
        # Every dispatch of batch 0 is doomed: retries re-dispatch the
        # same batch, but take() keys on fresh indices only — so plant
        # kills on the first max_retries+1 fresh dispatches instead and
        # drive a single one-batch pump.
        plan = FaultPlan.of(FaultEvent(batch_index=0, kind="kill"))
        runtime = _runtime(
            network,
            samples,
            health=HealthPolicy(max_retries=0, **FAST),
            fault_plan=plan,
        )
        try:
            with pytest.raises(ExecutionError, match="1 attempt"):
                runtime.serve(samples[:5])
        finally:
            runtime._inflight.clear()
            runtime.batcher._queue.clear()
            runtime.close()

    def test_exhausted_retries_shed_with_recorded_reason(
        self, network, samples
    ):
        telemetry.enable()
        plan = FaultPlan.of(FaultEvent(batch_index=0, kind="kill"))
        with _runtime(
            network,
            samples,
            health=HealthPolicy(
                max_retries=0, on_exhausted="shed", **FAST
            ),
            fault_plan=plan,
        ) as runtime:
            requests = [runtime.submit(x) for x in samples]
            runtime.pump(flush=True)
            dead = [r for r in requests if not r.done]
            live = [r for r in requests if r.done]
            # Exactly the first micro-batch died; its loss is recorded.
            assert len(dead) == 5
            assert all(r.error == "crash" for r in dead)
            assert runtime.shed_failed == 5
            # Zero silent losses: every admitted request completed or
            # was shed with a recorded reason.
            assert len(live) + len(dead) == len(samples)
            reference = runtime.reference(samples)
        assert telemetry.counter_value(
            "serve.shed", reason="failure", tenant=runtime.tenant
        ) == 5
        served = np.stack([r.result for r in live])
        np.testing.assert_array_equal(served, reference[5:])

    def test_hang_is_a_crash_in_serial_mode(self, network, samples):
        plan = FaultPlan.of(
            FaultEvent(batch_index=0, kind="hang", duration_s=30.0)
        )
        with _runtime(
            network,
            samples,
            health=HealthPolicy(**FAST),
            fault_plan=plan,
        ) as runtime:
            served = runtime.serve(samples)
            reference = runtime.reference(samples)
            assert len(runtime.restarts) == 1
        np.testing.assert_array_equal(served, reference)


class TestLatencyOutliers:
    def test_slow_replica_restarted_proactively(
        self, network, samples
    ):
        # Three consecutive slow batches on replica 0 (round-robin over
        # two replicas puts even fresh indices there) cross the default
        # suspect limit and trigger a proactive restart.
        plan = FaultPlan.of(
            FaultEvent(batch_index=2, kind="slow", duration_s=30.0),
            FaultEvent(batch_index=4, kind="slow", duration_s=30.0),
            FaultEvent(batch_index=6, kind="slow", duration_s=30.0),
        )
        many = np.random.default_rng(3).standard_normal((40, 24))
        with _runtime(
            network,
            samples,
            health=HealthPolicy(suspect_limit=3, **FAST),
            fault_plan=plan,
        ) as runtime:
            served = runtime.serve(many)
            reference = runtime.reference(many)
            assert plan.remaining == 0
            assert [e.reason for e in runtime.restarts] == ["outlier"]
            assert runtime.restarts[0].replica == 0
        # Slow faults only inflate the *reported* execution time;
        # results are untouched.
        np.testing.assert_array_equal(served, reference)


class TestDriftRecovery:
    def test_apply_drift_changes_outputs_reprogram_restores(
        self, network, samples
    ):
        """Unit-level drift contract: drift moves the served outputs,
        reprogramming from stored levels restores them exactly in the
        noise-free regime."""
        with _runtime(network, samples) as runtime:
            spec = runtime.spec
        executor, programmed = program_state(spec)
        pristine = run_programmed(spec, executor, programmed, samples)
        apply_drift(programmed, magnitude=0.5, seed=3)
        drifted = run_programmed(spec, executor, programmed, samples)
        assert not np.array_equal(drifted, pristine)
        reprogram_state(spec, programmed)
        restored = run_programmed(spec, executor, programmed, samples)
        np.testing.assert_array_equal(restored, pristine)

    def test_drift_probe_triggers_background_reprogram(
        self, network, samples
    ):
        telemetry.enable()
        plan = FaultPlan.of(
            FaultEvent(batch_index=0, kind="drift", magnitude=0.5, seed=3)
        )
        health = HealthPolicy(
            probe_interval_batches=2, drift_threshold=0.01, **FAST
        )
        with _runtime(
            network, samples, health=health, fault_plan=plan
        ) as runtime:
            assert runtime.spec.probe_reference
            served = runtime.serve(samples)
            reference = runtime.reference(samples)
            assert len(runtime.reprograms) >= 1
            event = runtime.reprograms[0]
            assert event.drift > health.drift_threshold
            assert event.cost_s > 0.0
            # The probe recorded the drift distance it saw.
            hist = telemetry.session().metrics.histogram(
                "serve.replica.drift", tenant=runtime.tenant
            )
            assert hist.count >= 1
            assert hist.maximum > health.drift_threshold
            # Once reprogrammed, later probes read ~zero drift.
            probe = runtime.dispatcher.probe_replica(0)
            assert probe.result(pool_timeout_s()) == pytest.approx(0.0)
        # serve() outputs: batches before the drift (and after the
        # reprogram) match the oracle; the drifted middle batches are
        # the graceful-degradation window.  The first batch computed
        # pre-drift must be exact.
        np.testing.assert_array_equal(served[:5], reference[:5])

    def test_probes_off_without_calibration_or_interval(
        self, network, samples
    ):
        with _runtime(network, samples) as runtime:
            # Default policy: no probe interval -> no reference capture.
            assert not runtime.spec.probe_reference
        with _runtime(
            network,
            samples,
            calibration=None,
            health=HealthPolicy(probe_interval_batches=2),
        ) as runtime:
            # Probing needs a calibration batch to compare against.
            assert not runtime.spec.probe_reference


class TestDegradeToSerial:
    def test_all_retired_serial_monitor_raises(self, network, samples):
        """Serial mode has nothing to degrade to: retiring its only
        replica makes dispatch raise rather than loop."""
        runtime = _runtime(
            network,
            samples,
            health=HealthPolicy(
                max_restarts_per_replica=0, max_retries=0, **FAST
            ),
            fault_plan=FaultPlan.of(
                FaultEvent(batch_index=0, kind="kill"),
            ),
            max_replicas=1,
        )
        try:
            with pytest.raises(ExecutionError):
                runtime.serve(samples[:5])
            assert runtime.monitor.all_unhealthy
            with pytest.raises(ExecutionError, match="no healthy"):
                runtime.submit(samples[0])
                runtime.pump(flush=True)
        finally:
            runtime._inflight.clear()
            runtime.batcher._queue.clear()
            runtime.close()


class TestPoolTimeoutKnob:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("PRIME_POOL_TIMEOUT_S", raising=False)
        assert pool_timeout_s() == 300.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("PRIME_POOL_TIMEOUT_S", "12.5")
        assert pool_timeout_s() == 12.5

    @pytest.mark.parametrize("bad", ["banana", "-3", "0", "inf", "nan"])
    def test_bad_values_warn_and_default(
        self, monkeypatch, bad, caplog
    ):
        telemetry.enable()
        monkeypatch.setenv("PRIME_POOL_TIMEOUT_S", bad)
        with caplog.at_level("WARNING", logger="repro.serve"):
            assert pool_timeout_s() == 300.0
        assert "PRIME_POOL_TIMEOUT_S" in caplog.text
        assert (
            telemetry.counter_value(
                "perf.env.invalid", knob="PRIME_POOL_TIMEOUT_S"
            )
            == 1
        )
