"""The Figure 6 precision study.

The paper evaluates handwritten-digit classification accuracy under
dynamic-fixed-point quantisation of the inputs and synaptic weights of
every layer, sweeping both precisions from 1 to 8 bits, and finds that
3-bit inputs with 3-bit weights already reach ~99% accuracy — NN
inference is robust to low precision, which justifies PRIME's 3-bit
drivers / 4-bit cells plus the composing scheme.

This module reproduces the study on the synthetic digit dataset (the
offline MNIST substitute): a LeNet-style CNN (the CNN-1 topology) is
trained in float, then evaluated with per-layer quantised inputs and
weights across the precision grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.eval.workloads import get_workload
from repro.nn.datasets import synthetic_mnist
from repro.nn.layers import Conv2D, Dense
from repro.nn.network import Sequential
from repro.precision.dynamic_fixed_point import DynamicFixedPoint


@dataclass
class PrecisionStudyResult:
    """Accuracy over the (input bits × weight bits) grid."""

    float_accuracy: float
    #: (input_bits, weight_bits) -> accuracy
    grid: dict[tuple[int, int], float] = field(default_factory=dict)

    def accuracy(self, input_bits: int, weight_bits: int) -> float:
        """Accuracy at one grid point."""
        return self.grid[(input_bits, weight_bits)]

    def saturation_point(self, tolerance: float = 0.01) -> tuple[int, int]:
        """Smallest symmetric (k, k) precision within ``tolerance`` of
        the float accuracy."""
        for k in range(1, 9):
            if (k, k) in self.grid and self.grid[(k, k)] >= (
                self.float_accuracy - tolerance
            ):
                return (k, k)
        raise WorkloadError("no saturating precision found in the grid")


def train_reference_network(
    workload: str = "CNN-1",
    n_train: int = 5000,
    n_test: int = 800,
    epochs: int = 10,
    seed: int = 7,
) -> tuple[Sequential, np.ndarray, np.ndarray]:
    """Train the float reference network on the synthetic digit set."""
    wl = get_workload(workload)
    if not wl.functional:
        raise WorkloadError(f"{workload} is analytical-only")
    topology = wl.topology()
    flat = len(wl.input_shape) == 1
    x, y = synthetic_mnist(n_train + n_test, flat=flat, seed=seed)
    x_train, y_train = x[:n_train], y[:n_train]
    x_test, y_test = x[n_train:], y[n_train:]
    net = topology.build(rng=np.random.default_rng(seed))
    net.train_sgd(
        x_train,
        y_train,
        epochs=epochs,
        batch_size=32,
        learning_rate=0.05 if topology.has_conv else 0.3,
        rng=np.random.default_rng(seed + 1),
        val_x=x_test,
        val_labels=y_test,
    )
    return net, x_test, y_test


def quantized_forward(
    net: Sequential,
    x: np.ndarray,
    input_bits: int,
    weight_bits: int,
) -> np.ndarray:
    """Forward pass with per-layer dynamic-fixed-point quantisation.

    Before every weight layer the (non-negative) activations are
    re-quantised to ``input_bits`` unsigned dynamic fixed point, and
    that layer's weights and biases are quantised to ``weight_bits``
    signed dynamic fixed point — the paper's evaluation protocol.
    """
    if input_bits < 1 or weight_bits < 2:
        raise WorkloadError(
            "input_bits must be >= 1 and weight_bits >= 2 (sign bit)"
        )
    act = np.asarray(x, dtype=np.float64)
    for layer in net.layers:
        if isinstance(layer, (Dense, Conv2D)):
            in_fmt = DynamicFixedPoint.for_data(
                act, bits=input_bits, signed=False
            )
            act = in_fmt.quantize(np.clip(act, 0.0, None))
            w_fmt = DynamicFixedPoint.for_data(
                layer.weight, bits=weight_bits
            )
            b_fmt = DynamicFixedPoint.for_data(
                layer.bias, bits=weight_bits
            )
            original_w = layer.weight.copy()
            original_b = layer.bias.copy()
            layer.weight[...] = w_fmt.quantize(layer.weight)
            layer.bias[...] = b_fmt.quantize(layer.bias)
            try:
                act = layer.forward(act)
            finally:
                layer.weight[...] = original_w
                layer.bias[...] = original_b
        else:
            act = layer.forward(act)
    return act


def quantized_accuracy(
    net: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    input_bits: int,
    weight_bits: int,
) -> float:
    """Classification accuracy of the quantised forward pass."""
    logits = quantized_forward(net, x, input_bits, weight_bits)
    return float(np.mean(np.argmax(logits, axis=-1) == y))


def precision_study(
    input_bit_range: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8),
    weight_bit_range: tuple[int, ...] = (2, 3, 4, 6, 8),
    workload: str = "CNN-1",
    n_train: int = 5000,
    n_test: int = 800,
    epochs: int = 10,
    seed: int = 7,
) -> PrecisionStudyResult:
    """Regenerate the Figure 6 grid."""
    net, x_test, y_test = train_reference_network(
        workload, n_train=n_train, n_test=n_test, epochs=epochs, seed=seed
    )
    result = PrecisionStudyResult(
        float_accuracy=net.accuracy(x_test, y_test)
    )
    for wb in weight_bit_range:
        for ib in input_bit_range:
            result.grid[(ib, wb)] = quantized_accuracy(
                net, x_test, y_test, ib, wb
            )
    return result
