"""Resilience policy knobs.

A :class:`ResiliencePolicy` bundles every fault-tolerance decision the
stack makes, from the device-level write-and-verify loop up to the
executor's tile remapping.  It lives in :mod:`repro.resilience` (pure
data, no imports from the device/crossbar layers) so both
:class:`repro.params.prime.PrimeConfig` and the low-level programming
paths can consume it without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ResiliencePolicy:
    """Fault-tolerance configuration for programming and mapping.

    Attributes
    ----------
    verify_writes:
        Master switch for the closed-loop program-and-verify path.
        When false (the default) programming behaves exactly as before
        the resilience layer existed — no readback, no reports — so
        existing runs stay bit-identical.
    max_retries:
        Bounded pulse budget: how many extra write rounds a cell that
        reads back outside tolerance may receive before it is declared
        irrecoverable.
    tolerance_steps:
        Verify tolerance in conductance-step units.  A cell passes when
        its readback conductance is within ``tolerance_steps * g_step``
        of the ideal mapping of its target level.
    retry_sigma_scale:
        Per-retry tightening of the programming variation: each retry
        round multiplies the effective ``programming_sigma`` by this
        factor, modelling the slower, finer pulses of a real tuning
        loop.
    spare_columns:
        Redundant logical columns reserved per crossbar pair.  The
        compiler shrinks its tile width accordingly and the engine
        re-routes columns whose residual weight error exceeds
        ``column_error_limit`` into the reserve.
    spare_pairs_per_bank:
        Healthy spare mat pairs reserved per bank for whole-tile
        remapping when column sparing is exhausted.
    column_error_limit:
        Sparing trigger: residual weight-error budget per logical
        column, in units of integer weight steps summed over the column
        (high-half bitline errors weigh ``2**(pw/2)``).  Columns above
        the budget are rerouted into spare slots, worst first, while
        spare capacity remains.
    mask_error_limit:
        Last-resort masking threshold, same units.  A column that still
        exceeds this (much larger) budget after sparing is zero-masked:
        dropping its whole contribution beats keeping a column of
        garbage, but masking a merely-imperfect column would discard
        good weights, so the two thresholds are deliberately far apart.
    """

    verify_writes: bool = False
    max_retries: int = 3
    tolerance_steps: float = 0.5
    retry_sigma_scale: float = 0.5
    spare_columns: int = 0
    spare_pairs_per_bank: int = 0
    column_error_limit: float = 192.0
    mask_error_limit: float = 4096.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.tolerance_steps <= 0.0:
            raise ConfigurationError("tolerance_steps must be positive")
        if not 0.0 <= self.retry_sigma_scale <= 1.0:
            raise ConfigurationError(
                "retry_sigma_scale must be in [0, 1]"
            )
        if self.spare_columns < 0 or self.spare_pairs_per_bank < 0:
            raise ConfigurationError("spare capacities must be non-negative")
        if self.column_error_limit <= 0.0:
            raise ConfigurationError("column_error_limit must be positive")
        if self.mask_error_limit < self.column_error_limit:
            raise ConfigurationError(
                "mask_error_limit must be >= column_error_limit"
            )


#: Resilience disabled: the stack behaves exactly as the seed repo.
DEFAULT_RESILIENCE = ResiliencePolicy()
