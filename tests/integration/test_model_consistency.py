"""Cross-validation between the analytical and functional models.

The analytical executor predicts analog firings per sample; the
functional engines count their actual invocations.  The two must agree
up to the documented difference: the analytic model credits intra-pair
replication (packing several small input vectors into one analog
firing), which the functional path evaluates one vector at a time.
"""

import numpy as np
import pytest

from repro.core.compiler import PrimeCompiler
from repro.core.executor import PrimeExecutor
from repro.eval.workloads import get_workload


class TestInvocationAccounting:
    def test_mlp_functional_matches_analytic_exactly(
        self, trained_tiny_mlp, tiny_digit_data
    ):
        # FC layers have reuse=1 and intra_replication=1: the counts
        # must match exactly (one firing per tile per sample).
        topology, net = trained_tiny_mlp
        _, _, x_test, _ = tiny_digit_data
        plan = PrimeCompiler().compile(topology)
        executor = PrimeExecutor()
        programmed = executor.program_network(net, plan)
        batch = 16
        executor.run_functional(
            net, plan, x_test[:batch], programmed=programmed
        )
        functional = sum(
            engine.mvm_invocations
            for tiles, _ in programmed
            for row in tiles
            for engine in row
        )
        analytic = batch * sum(
            m.analog_ops_per_sample for m in plan.weight_layers
        )
        assert functional == analytic

    def test_cnn_functional_bounded_by_analytic_times_packing(
        self, trained_tiny_cnn
    ):
        topology, net, x_test, _ = trained_tiny_cnn
        plan = PrimeCompiler().compile(topology)
        executor = PrimeExecutor()
        programmed = executor.program_network(net, plan)
        batch = 4
        executor.run_functional(
            net, plan, x_test[:batch], programmed=programmed
        )
        functional = sum(
            engine.mvm_invocations
            for tiles, _ in programmed
            for row in tiles
            for engine in row
        )
        # per-layer: functional fires reuse × pairs; analytic divides
        # the reuse by the intra-pair packing factor
        expected_functional = batch * sum(
            max(m.traffic.reuse, 1) * m.pairs
            for m in plan.weight_layers
        )
        analytic = batch * sum(
            m.analog_ops_per_sample for m in plan.weight_layers
        )
        assert functional == expected_functional
        assert analytic <= functional
        conv = next(m for m in plan.weight_layers if m.traffic.is_conv)
        # the gap is exactly the packing factor on conv layers
        assert analytic * conv.intra_replication >= functional

    def test_energy_model_tracks_invocations(self, trained_tiny_mlp):
        # Doubling the batch doubles both the analytic energy and the
        # functional firing count.
        topology, net = trained_tiny_mlp
        plan = PrimeCompiler().compile(topology)
        executor = PrimeExecutor()
        e1 = executor.estimate(plan, batch=32).compute_energy_j
        e2 = executor.estimate(plan, batch=64).compute_energy_j
        assert e2 == pytest.approx(2 * e1)

    def test_sense_amp_conversions_counted(self, trained_tiny_mlp, tiny_digit_data):
        topology, net = trained_tiny_mlp
        _, _, x_test, _ = tiny_digit_data
        plan = PrimeCompiler().compile(topology)
        executor = PrimeExecutor()
        programmed = executor.program_network(net, plan)
        executor.run_functional(
            net, plan, x_test[:4], programmed=programmed
        )
        total_conversions = sum(
            engine.sense.conversions
            for tiles, _ in programmed
            for row in tiles
            for engine in row
        )
        assert total_conversions > 0
