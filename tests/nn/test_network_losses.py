"""Tests for losses, the Sequential container, and SGD training."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.nn.layers import Dense, ReLU, Sigmoid
from repro.nn.losses import CrossEntropyLoss, MeanSquaredErrorLoss
from repro.nn.network import Sequential


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = CrossEntropyLoss()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        labels = np.array([0, 1])
        assert loss.forward(logits, labels) < 1e-4

    def test_uniform_prediction(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((3, 4))
        labels = np.array([0, 1, 2])
        assert loss.forward(logits, labels) == pytest.approx(np.log(4))

    def test_gradient_matches_numerical(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.standard_normal((3, 5))
        labels = np.array([1, 0, 4])
        grad = loss.backward(logits, labels)
        eps = 1e-6
        for i in range(3):
            for j in range(5):
                logits[i, j] += eps
                up = loss.forward(logits, labels)
                logits[i, j] -= 2 * eps
                dn = loss.forward(logits, labels)
                logits[i, j] += eps
                assert grad[i, j] == pytest.approx(
                    (up - dn) / (2 * eps), abs=1e-5
                )

    def test_shape_validation(self):
        with pytest.raises(WorkloadError):
            CrossEntropyLoss().forward(np.zeros(4), np.zeros(4, dtype=int))

    def test_numerical_stability_large_logits(self):
        loss = CrossEntropyLoss()
        logits = np.array([[1e4, -1e4]])
        value = loss.forward(logits, np.array([0]))
        assert np.isfinite(value) and value < 1e-6


class TestMSE:
    def test_zero_on_match(self):
        loss = MeanSquaredErrorLoss()
        x = np.array([[1.0, 2.0]])
        assert loss.forward(x, x) == 0.0

    def test_gradient(self, rng):
        loss = MeanSquaredErrorLoss()
        out = rng.standard_normal((2, 3))
        tgt = rng.standard_normal((2, 3))
        grad = loss.backward(out, tgt)
        assert np.allclose(grad, 2 * (out - tgt) / out.size)

    def test_shape_mismatch(self):
        with pytest.raises(WorkloadError):
            MeanSquaredErrorLoss().forward(np.zeros(3), np.zeros(4))


class TestSequential:
    def test_forward_composition(self, rng):
        net = Sequential([Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)])
        x = rng.standard_normal((3, 4))
        out = net.forward(x)
        assert out.shape == (3, 2)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            Sequential([])

    def test_predict_argmax(self, rng):
        net = Sequential([Dense(4, 3, rng=rng)])
        x = rng.standard_normal((5, 4))
        assert np.array_equal(
            net.predict(x), np.argmax(net.forward(x), axis=1)
        )

    def test_weight_round_trip(self, rng):
        net = Sequential([Dense(4, 4, rng=rng), Sigmoid(), Dense(4, 2, rng=rng)])
        weights = net.get_weights()
        for layer in net.layers:
            for p in layer.params():
                p += 1.0
        net.set_weights(weights)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(net.get_weights(), weights)
        )

    def test_set_weights_validation(self, rng):
        net = Sequential([Dense(4, 2, rng=rng)])
        with pytest.raises(WorkloadError):
            net.set_weights([np.zeros((4, 2))])  # missing bias
        with pytest.raises(WorkloadError):
            net.set_weights([np.zeros((3, 2)), np.zeros(2)])

    def test_npz_round_trip(self, rng, tmp_path):
        net = Sequential([Dense(4, 3, rng=rng)])
        path = str(tmp_path / "weights.npz")
        net.save_npz(path)
        original = net.get_weights()
        net.layers[0].weight += 5.0
        net.load_npz(path)
        assert np.allclose(net.get_weights()[0], original[0])


class TestTraining:
    def test_loss_decreases_on_separable_data(self, rng):
        # Two Gaussian blobs, trivially separable.
        n = 200
        x = np.vstack(
            [
                rng.standard_normal((n, 2)) + 3.0,
                rng.standard_normal((n, 2)) - 3.0,
            ]
        )
        y = np.array([0] * n + [1] * n)
        net = Sequential([Dense(2, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)])
        result = net.train_sgd(
            x, y, epochs=5, batch_size=16, learning_rate=0.05, rng=rng
        )
        assert result.losses[-1] < result.losses[0]
        assert result.final_accuracy > 0.95

    def test_validation_accuracy_tracked(self, rng):
        x = rng.standard_normal((64, 4))
        y = (x[:, 0] > 0).astype(int)
        net = Sequential([Dense(4, 2, rng=rng)])
        result = net.train_sgd(
            x, y, epochs=3, batch_size=8, val_x=x, val_labels=y, rng=rng
        )
        assert len(result.accuracies) == 3
        assert len(result.losses) == 3

    def test_empty_history_raises(self):
        from repro.nn.network import TrainingResult

        with pytest.raises(WorkloadError):
            TrainingResult().final_accuracy

    def test_parameter_validation(self, rng):
        net = Sequential([Dense(2, 2, rng=rng)])
        with pytest.raises(WorkloadError):
            net.train_sgd(np.zeros((4, 2)), np.zeros(4, dtype=int), epochs=0)

    def test_digit_mlp_learns(self, trained_tiny_mlp, tiny_digit_data):
        _, net = trained_tiny_mlp
        _, _, x_test, y_test = tiny_digit_data
        assert net.accuracy(x_test, y_test) > 0.85
