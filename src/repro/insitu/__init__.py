"""In-situ training on PRIME's crossbars (the paper's future work).

PRIME deploys off-line-trained networks; §IV-A notes that prior work
(Prezioso et al., Li et al., Liu et al.) trains *in* ReRAM crossbars
and that extending PRIME with training capability is planned.  This
package implements the standard mixed-signal scheme those works use:

* the **forward pass** runs through the analog crossbar engines
  (quantised, with device variation — the network learns around its
  own hardware);
* the **backward pass** is computed digitally from the analog
  activations;
* updates accumulate in digital *shadow weights*, and cells are
  reprogrammed only when a weight crosses a quantisation level —
  every reprogramming event costs write pulses, energy, and endurance.
"""

from repro.insitu.trainer import InSituTrainer, InSituTrainingResult

__all__ = ["InSituTrainer", "InSituTrainingResult"]
