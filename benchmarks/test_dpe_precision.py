"""§III-D technology anchor: DPE output precision vs cell precision.

The paper quotes the HP Dot-Product Engine result — for a 256×256
crossbar with full-precision inputs, 4-bit weights reach ~6-bit output
precision and 6-bit weights ~7-bit once crossbar noise is considered —
as the basis for its 4-bit-cell / 6-bit-output assumption.  This bench
measures effective output bits (ENOB) on the functional crossbar.
"""

from repro.eval.dpe_study import dpe_study
from repro.eval.reporting import render_table


def test_dpe_output_precision(once):
    result = once(
        lambda: dpe_study(
            weight_bit_range=(2, 3, 4, 5, 6), trials=16
        )
    )

    rows = [
        [wb, f"{result.enob[wb]:.2f}"] for wb in sorted(result.enob)
    ]
    print()
    print(
        render_table(
            "DPE study — effective output bits vs cell precision "
            "(256 rows, 3% variation)",
            ["weight bits", "effective output bits"],
            rows,
        )
    )

    values = [result.enob[k] for k in sorted(result.enob)]
    # monotone rise ...
    assert all(b >= a - 0.1 for a, b in zip(values, values[1:]))
    # ... that saturates at the analog noise floor
    assert (result.enob[6] - result.enob[5]) < (
        result.enob[3] - result.enob[2]
    )
    # the paper's operating point stays useful
    assert result.enob[4] > 3.0
