"""Baseline system models the paper compares PRIME against.

* :mod:`repro.baselines.cpu` — the CPU-only baseline of Table IV.
* :mod:`repro.baselines.npu` — the DianNao-style parallel NPU of
  Table V as a co-processor (pNPU-co) and as a 3D-stacked PIM
  processor (pNPU-pim, ×1 and ×64).
* :mod:`repro.baselines.common` — the shared execution-report format
  and per-layer traffic model.
"""

from repro.baselines.common import ExecutionReport, LayerTraffic, workload_traffic
from repro.baselines.cpu import CpuModel
from repro.baselines.npu import NpuCoProcessorModel, NpuPimModel

__all__ = [
    "ExecutionReport",
    "LayerTraffic",
    "workload_traffic",
    "CpuModel",
    "NpuCoProcessorModel",
    "NpuPimModel",
]
