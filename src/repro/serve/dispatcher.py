"""Replica-parallel dispatch of micro-batches onto programmed workers.

A :class:`~repro.core.scheduler.BankScheduler` grant gives a
deployment ``R`` replica bank groups — ``R`` independent copies of the
programmed network.  The dispatcher turns that grant into execution
capacity:

* **process mode** — a persistent ``ProcessPoolExecutor`` with one
  worker per replica.  Each worker programs its copy *exactly once*
  (in the pool initializer) and serves every subsequent micro-batch
  from the cached :class:`~repro.core.executor.ProgrammedLayer` list
  with frozen calibration; batches round-robin across workers.
* **serial mode** — the in-process fallback (sandboxes without fork,
  ``mode="serial"``): one programmed copy served inline.  Same
  numbers, no overlap.

Process mode moves batch payloads through **shared-memory slabs**: the
coordinator allocates one ``multiprocessing.shared_memory`` slab per
replica, sized from the micro-batcher's ``max_batch`` and the widest
mapped layer, and batch inputs/results travel as
:class:`ShmRef` ``(slab, offset, shape, dtype)`` descriptors instead
of pickled ndarrays — only the small ResultEnvelope metadata
(telemetry deltas, timings) still pickles.  ``PRIME_SHM=0`` disables
the slabs; slab exhaustion or oversized payloads fall back to pickling
that batch (counted as ``serve.dispatch.shm_fallback``), so shared
memory is purely an optimisation with identical results either way.

All replicas program from one :class:`WorkerSpec` (same seed), so they
hold bit-identical state and results never depend on which replica a
batch lands on.  With noise enabled, every micro-batch additionally
reseeds the engines' shared noise stream from a per-batch seed
(:meth:`~repro.perf.kernels.FusedLayerKernel.reseed_noise`), keyed by
batch index via :func:`repro.perf.parallel.task_seed` — noisy serving
is reproducible and routing-independent too.
"""

from __future__ import annotations

import contextlib
import logging
import os
import pickle
import signal
import threading
import time
import warnings
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import resource_tracker
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from repro import telemetry
from repro.core.executor import PrimeExecutor, ProgrammedLayer
from repro.core.mapping import MappingPlan
from repro.device.faults import env_fault_rates
from repro.errors import ConfigurationError
from repro.nn.network import Sequential
from repro.params.prime import PrimeConfig
from repro.perf.kernels import fused_enabled, scoped_noise_stream
from repro.perf.parallel import ParallelFallbackWarning, task_seed
from repro.resilience.policy import ResiliencePolicy
from repro.serve.health import WorkerCrash, apply_drift
from repro.telemetry.shipping import ResultEnvelope, run_scoped

__all__ = [
    "WorkerSpec",
    "ShmRef",
    "shm_enabled",
    "pool_timeout_s",
    "dispatch_mode",
    "batch_noise_seed",
    "program_state",
    "run_programmed",
    "run_programmed_shared",
    "reprogram_state",
    "spec_resident_bytes",
    "SerialDispatcher",
    "ThreadDispatcher",
    "ProcessDispatcher",
    "POOL_SPAWN_FAILURES",
    "serial_fallback",
    "make_dispatcher",
]

logger = logging.getLogger("repro.serve")

#: Default seconds to wait for a pool worker to program its replica
#: before declaring it dead (``PRIME_POOL_TIMEOUT_S`` overrides).
_POOL_TIMEOUT_DEFAULT_S = 300.0


def pool_timeout_s() -> float:
    """Pool worker probe/initialise timeout (``PRIME_POOL_TIMEOUT_S``).

    Bounds how long the coordinator waits for a worker to program its
    replica (spawn, restart) or answer a control call (drift probe,
    reprogram).  Bad values log a warning and keep the default rather
    than raising at deploy time, mirroring the other ``PRIME_*`` knobs.
    """
    env = os.environ.get("PRIME_POOL_TIMEOUT_S", "").strip()
    if not env:
        return _POOL_TIMEOUT_DEFAULT_S
    try:
        value = float(env)
    except ValueError:
        value = 0.0
    if value <= 0.0 or not np.isfinite(value):
        logger.warning(
            "PRIME_POOL_TIMEOUT_S must be a positive number, got %r; "
            "keeping the default (%gs)",
            env,
            _POOL_TIMEOUT_DEFAULT_S,
        )
        telemetry.count("perf.env.invalid", knob="PRIME_POOL_TIMEOUT_S")
        return _POOL_TIMEOUT_DEFAULT_S
    return value
#: Shared-memory slots per replica slab — the inflight micro-batch
#: depth one replica's slab can hold before dispatch falls back to
#: pickling (the runtime keeps at most a handful of batches inflight
#: per replica, so four slots absorb normal pipelining).
_SLAB_SLOTS = 4


def shm_enabled() -> bool:
    """Whether shared-memory dispatch is enabled (``PRIME_SHM``).

    ``"0"`` disables; unset/``"1"`` enable.  Any other value logs a
    warning and keeps the default rather than raising at deploy time,
    mirroring the other ``PRIME_*`` knobs.
    """
    env = os.environ.get("PRIME_SHM", "").strip()
    if env in ("", "1"):
        return True
    if env == "0":
        return False
    logger.warning(
        "PRIME_SHM must be 0 or 1, got %r; keeping the default "
        "(enabled)",
        env,
    )
    telemetry.count("perf.env.invalid", knob="PRIME_SHM")
    return True


def dispatch_mode() -> str | None:
    """Dispatch-mode override (``PRIME_DISPATCH``).

    ``serial`` | ``thread`` | ``process`` force that dispatcher
    wherever a deployment asks for ``mode="auto"``; unset (or
    ``auto``) keeps the automatic choice.  Explicit per-deployment
    modes always win — the env knob only steers ``auto``.  Bad values
    log a warning and keep the default rather than raising at deploy
    time, mirroring the other ``PRIME_*`` knobs.
    """
    env = os.environ.get("PRIME_DISPATCH", "").strip().lower()
    if not env or env == "auto":
        return None
    if env in ("serial", "thread", "process"):
        return env
    logger.warning(
        "PRIME_DISPATCH must be serial, thread, process, or auto, got "
        "%r; keeping the default (auto)",
        env,
    )
    telemetry.count("perf.env.invalid", knob="PRIME_DISPATCH")
    return None


#: Programmed state held per crossbar cell: the int16 MLC level plus
#: the float64 conductance (see :class:`~repro.device.cell.CellArray`).
_CELL_STATE_BYTES = 10


def spec_resident_bytes(spec: WorkerSpec) -> int:
    """Programmed-crossbar footprint of ONE copy of ``spec``'s network.

    Every mat pair of every mapped weight layer holds a differential
    array pair whose per-cell state is the stored MLC level plus the
    programmed conductance.  This is the per-replica RAM the dispatch
    modes multiply differently: thread mode shares one copy across all
    replica threads, serial/process mode hold one per replica — the
    ``serve.replica.resident_bytes`` gauge makes that visible.
    """
    xbar = spec.config.crossbar
    per_pair = 2 * xbar.rows * xbar.cols * _CELL_STATE_BYTES
    return sum(m.pairs * per_pair for m in spec.plan.weight_layers)


@dataclass(frozen=True)
class ShmRef:
    """Descriptor of an ndarray resident in a shared-memory slab.

    This is all that crosses the process boundary for a batch payload;
    both sides rebuild the array as a view over the mapped slab.
    """

    name: str
    offset: int
    shape: tuple
    dtype: str


@dataclass(frozen=True)
class _ResultSlot:
    """Where a worker should place a batch's result array."""

    name: str
    offset: int
    capacity: int


class _SlabPool:
    """Coordinator-side shared-memory slabs, one per replica.

    Each slab holds :data:`_SLAB_SLOTS` slots of ``in_bytes`` (batch
    input) plus ``out_bytes`` (result) — a slot is held from dispatch
    until the batch's future resolves, so slab memory is bounded by the
    inflight depth, not the request count.

    Every slab carries a **generation counter** bumped by
    :meth:`reclaim_replica` (the replica-restart path): an acquire key
    embeds the generation it was issued under, and a release with a
    stale generation is ignored.  That makes slot recovery after a
    crashed or hung replica safe — reclaim returns every held slot to
    the free list, and whatever late release the abandoned futures
    would eventually issue cannot double-free a slot the restarted
    replica has since re-acquired.
    """

    def __init__(
        self,
        replicas: int,
        slots: int,
        in_bytes: int,
        out_bytes: int,
    ) -> None:
        self.in_bytes = in_bytes
        self.out_bytes = out_bytes
        self.slots = slots
        self.slot_bytes = in_bytes + out_bytes
        self.slabs: list[SharedMemory] = []
        self._by_name: dict[str, SharedMemory] = {}
        self._free: list[list[int]] = []
        self._gen: list[int] = []
        self._next = 0
        for _ in range(replicas):
            self.add_replica()

    def add_replica(self) -> None:
        """Allocate one more replica slab (autoscaler grow path)."""
        shm = SharedMemory(create=True, size=self.slots * self.slot_bytes)
        self.slabs.append(shm)
        self._by_name[shm.name] = shm
        self._free.append(list(range(self.slots)))
        self._gen.append(0)

    def remove_replica(self) -> None:
        """Release the last replica slab (autoscaler shrink path).

        The caller must have drained that replica's inflight batches —
        removing a slab with held slots is a bug, not a race.
        """
        if len(self._free[-1]) != self.slots:
            raise ConfigurationError(
                "cannot remove a replica slab with inflight slots"
            )
        shm = self.slabs.pop()
        self._free.pop()
        self._gen.pop()
        del self._by_name[shm.name]
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass

    def reclaim_replica(self, replica: int) -> int:
        """Return every held slot of a replica's slab to the free list.

        The replica-restart path: the worker holding those slots has
        been killed, so nothing will write into them again.  Bumps the
        slab's generation so late releases from the abandoned futures
        are ignored.  Returns the number of slots recovered.
        """
        i = replica % len(self.slabs)
        recovered = self.slots - len(self._free[i])
        self._gen[i] += 1
        self._free[i] = list(range(self.slots))
        return recovered

    @property
    def held_slots(self) -> int:
        """Slots currently held by inflight batches (accounting)."""
        return sum(self.slots - len(free) for free in self._free)

    def acquire(
        self, replica: int | None = None
    ) -> tuple[int, int, int] | None:
        """A free ``(slab, slot, generation)``; ``None`` when none is
        available.

        With ``replica`` given the slot is pinned to that replica's
        slab (the per-replica worker pool executes straight off its own
        slab); without it the pool rotates across replica slabs (the
        legacy round-robin used by direct dispatcher micro-benches).
        """
        n = len(self.slabs)
        if replica is not None:
            i = replica % n
            if self._free[i]:
                return i, self._free[i].pop(), self._gen[i]
            return None
        start = self._next
        self._next = (start + 1) % n
        for k in range(n):
            i = (start + k) % n
            if self._free[i]:
                return i, self._free[i].pop(), self._gen[i]
        return None

    def release(self, slab: int, slot: int, gen: int = -1) -> None:
        if 0 <= slab < len(self.slabs):
            if gen >= 0 and gen != self._gen[slab]:
                # Stale release from before a reclaim: the slot already
                # went back to the free list (and may be held again).
                return
            self._free[slab].append(slot)

    def stage(
        self, key: tuple[int, int, int], batch: np.ndarray
    ) -> tuple[ShmRef, _ResultSlot]:
        """Copy ``batch`` into the slot's input region.

        Returns the input descriptor plus the result region the worker
        writes back into — the only per-batch copies left are this one
        and the coordinator-side result materialisation.
        """
        slab, slot = key[0], key[1]
        shm = self.slabs[slab]
        base = slot * self.slot_bytes
        view = np.ndarray(
            batch.shape, dtype=batch.dtype, buffer=shm.buf, offset=base
        )
        view[...] = batch
        return (
            ShmRef(shm.name, base, batch.shape, batch.dtype.str),
            _ResultSlot(shm.name, base + self.in_bytes, self.out_bytes),
        )

    def view(self, ref: ShmRef) -> np.ndarray:
        """The coordinator-side array view a worker's ref describes."""
        shm = self._by_name[ref.name]
        return np.ndarray(
            ref.shape,
            dtype=np.dtype(ref.dtype),
            buffer=shm.buf,
            offset=ref.offset,
        )

    def close(self) -> None:
        for shm in self.slabs:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


@dataclass
class WorkerSpec:
    """Everything a worker needs to program and serve one replica.

    Picklable by construction (plain numpy networks, frozen config
    dataclasses, pickled mapping plans) so one spec fans out to every
    pool worker via the initializer.
    """

    network: Sequential
    plan: MappingPlan
    config: PrimeConfig
    seed: int
    with_noise: bool = False
    resilience: ResiliencePolicy | None = None
    calibration: np.ndarray | None = field(default=None, repr=False)
    #: Record telemetry worker-side under a scratch session and ship it
    #: back in every :class:`~repro.telemetry.shipping.ResultEnvelope`.
    #: Set by the runtime when the coordinator has telemetry enabled at
    #: deploy time; costs nothing when off.
    ship_telemetry: bool = False
    #: Emulated device service time per micro-batch (wall seconds), or
    #: ``None`` for no pacing.  On PIM hardware the banks compute while
    #: the host coordinates; the functional simulation conflates both
    #: into host CPU, which makes replica *occupancy* (everything the
    #: cluster loop schedules around: pipelining overlap, autoscaling,
    #: saturation) an artifact of the host's core count and BLAS
    #: threading.  Pacing floors each batch's execution wall time at a
    #: fixed device service time, so scheduling behaviour is
    #: machine-independent and genuinely overlappable.  Results are
    #: unchanged — pacing only ever sleeps after the values are
    #: computed.
    pace_batch_s: float | None = None
    #: Capture the calibration batch's noise-free outputs at program
    #: time as the drift-probe reference.  Set by the runtime when the
    #: health policy enables periodic probing; off by default so the
    #: fault-free path does no extra work.
    probe_reference: bool = False

    @property
    def use_rng(self) -> bool:
        """Whether programming/serving needs a generator at all.

        Ideal noise-free serving programs with ``rng=None`` so the
        arrays stay pristine and the exact fused fast path applies —
        the same regime a direct noise-free ``run_functional`` runs in.
        """
        policy = (
            self.resilience
            if self.resilience is not None
            else self.config.resilience
        )
        xbar = self.config.crossbar
        fault_rates = (xbar.fault_rate_hrs, xbar.fault_rate_lrs)
        if fault_rates == (0.0, 0.0):
            fault_rates = env_fault_rates()
        return (
            self.with_noise
            or policy.verify_writes
            or fault_rates != (0.0, 0.0)
        )


def batch_noise_seed(seed: int, batch_index: int) -> int:
    """The deterministic noise seed of micro-batch ``batch_index``."""
    return task_seed(seed, "serve.batch", batch_index)


def program_state(
    spec: WorkerSpec,
) -> tuple[PrimeExecutor, list[ProgrammedLayer]]:
    """Program one replica from ``spec`` (the once-per-worker step).

    Returns the executor and its cached programmed state.  When the
    spec carries a calibration batch, the per-layer input formats and
    SA output windows freeze here — every later micro-batch reuses
    them, so results do not depend on how traffic happened to be
    batched.  The calibration pass never samples read noise, keeping
    the post-programming RNG state independent of it.
    """
    executor = PrimeExecutor(spec.config)
    rng = (
        np.random.default_rng(spec.seed) if spec.use_rng else None
    )
    programmed = executor.program_network(
        spec.network, spec.plan, rng=rng, resilience=spec.resilience
    )
    if spec.calibration is not None:
        executor.run_functional(
            spec.network,
            spec.plan,
            spec.calibration,
            programmed=programmed,
            with_noise=False,
        )
    if telemetry.enabled():
        telemetry.count("serve.programs")
    return executor, programmed


def capture_reference(
    spec: WorkerSpec,
    executor: PrimeExecutor,
    programmed: list[ProgrammedLayer],
) -> np.ndarray | None:
    """The calibration batch's noise-free outputs (the drift-probe
    reference), or ``None`` when the spec carries no calibration or
    probing is off.  Noise-free evaluation samples nothing, so the
    capture never perturbs the programmed RNG state."""
    if not spec.probe_reference or spec.calibration is None:
        return None
    return executor.run_functional(
        spec.network,
        spec.plan,
        spec.calibration,
        programmed=programmed,
        with_noise=False,
    )


def drift_distance(
    spec: WorkerSpec,
    executor: PrimeExecutor,
    programmed: list[ProgrammedLayer],
    reference: np.ndarray | None,
) -> float:
    """Relative L2 distance of the calibration outputs from the
    program-time reference — the health probe's drift metric."""
    if reference is None or spec.calibration is None:
        return 0.0
    out = executor.run_functional(
        spec.network,
        spec.plan,
        spec.calibration,
        programmed=programmed,
        with_noise=False,
    )
    denom = float(np.linalg.norm(reference)) or 1.0
    return float(np.linalg.norm(out - reference)) / denom


def reprogram_state(
    spec: WorkerSpec, programmed: list[ProgrammedLayer]
) -> None:
    """Re-program every engine array to its stored MLC levels.

    The drift-recovery step: retention drift decays conductances but
    never the programmed *levels*, so rewriting each
    :class:`~repro.device.cell.CellArray` from its own levels (through
    the spec's program-and-verify policy when one is active) restores
    the deploy-time state — exactly, in the noise-free regime.  The
    fused-kernel caches are invalidated afterwards so the recovered
    conductances reach subsequent evaluations.
    """
    policy = (
        spec.resilience
        if spec.resilience is not None
        else spec.config.resilience
    )
    verify = policy if policy.verify_writes else None
    for layer in programmed:
        for row in layer.tiles:
            for engine in row:
                for array in (
                    engine.pair.positive,
                    engine.pair.negative,
                ):
                    array.cells.program_levels(
                        array.cells.levels, verify=verify
                    )
        layer.kernel.invalidate()


def run_programmed(
    spec: WorkerSpec,
    executor: PrimeExecutor,
    programmed: list[ProgrammedLayer],
    batch: np.ndarray,
    noise_seed: int | None = None,
) -> np.ndarray:
    """Serve one micro-batch from already-programmed state."""
    start = time.perf_counter() if spec.pace_batch_s else 0.0
    if spec.with_noise and noise_seed is not None:
        programmed[0].kernel.reseed_noise(noise_seed)
    result = executor.run_functional(
        spec.network,
        spec.plan,
        batch,
        programmed=programmed,
        with_noise=spec.with_noise,
    )
    if spec.pace_batch_s:
        # Hold the batch until the emulated device service time has
        # elapsed; see WorkerSpec.pace_batch_s.
        remaining = spec.pace_batch_s - (time.perf_counter() - start)
        if remaining > 0.0:
            time.sleep(remaining)
    return result


def run_programmed_shared(
    spec: WorkerSpec,
    executor: PrimeExecutor,
    programmed: list[ProgrammedLayer],
    batch: np.ndarray,
    noise_seed: int | None = None,
) -> np.ndarray:
    """Serve one micro-batch from *shared* programmed state, mutation-free.

    The thread-replica twin of :func:`run_programmed`: instead of
    rewinding the engines' shared noise generator in place (a data race
    when several threads serve off one programmed copy), the noisy path
    routes this thread's draws through a private stream seeded
    identically (:meth:`~repro.perf.kernels.FusedLayerKernel.noise_stream`
    under :func:`~repro.perf.kernels.scoped_noise_stream`) — results
    are bit-identical to the reseed path, batch by batch, and nothing
    shared is written.
    """
    start = time.perf_counter() if spec.pace_batch_s else 0.0
    if spec.with_noise and noise_seed is not None:
        stream = programmed[0].kernel.noise_stream(noise_seed)
        ctx = scoped_noise_stream(stream)
    else:
        ctx = contextlib.nullcontext()
    with ctx:
        result = executor.run_functional(
            spec.network,
            spec.plan,
            batch,
            programmed=programmed,
            with_noise=spec.with_noise,
        )
    if spec.pace_batch_s:
        remaining = spec.pace_batch_s - (time.perf_counter() - start)
        if remaining > 0.0:
            time.sleep(remaining)
    return result


# ----------------------------------------------------------------------
# process-pool worker entry points (module-level for pickling)
# ----------------------------------------------------------------------

#: Per-process worker state: (spec, executor, programmed) after init.
_WORKER_STATE: tuple | None = None
#: Slab attachments cached per worker process (name -> SharedMemory);
#: a replica re-attaches each slab at most once for its lifetime.
_WORKER_SLABS: dict[str, SharedMemory] = {}


def _worker_view(ref: ShmRef) -> np.ndarray:
    """The worker-side array view a coordinator ref describes."""
    shm = _WORKER_SLABS.get(ref.name)
    if shm is None:
        shm = SharedMemory(name=ref.name)
        _WORKER_SLABS[ref.name] = shm
    return np.ndarray(
        ref.shape,
        dtype=np.dtype(ref.dtype),
        buffer=shm.buf,
        offset=ref.offset,
    )
#: Telemetry recorded while this worker initialised (programming +
#: calibration), held until the first served batch ships it to the
#: coordinator.  Kept separate from per-batch deltas so execution
#: telemetry stays a pure function of the batches served — the
#: serial-vs-process determinism contract.
_WORKER_INIT_DELTA = None
#: Program-time calibration outputs (the drift-probe reference);
#: ``None`` unless the spec enables ``probe_reference``.
_WORKER_CAL_REF: np.ndarray | None = None


def _apply_fault(
    fault: tuple | None,
    programmed: list[ProgrammedLayer],
    before: bool,
) -> int:
    """Execute a chaos-harness fault payload in a pool worker.

    ``before`` selects the pre-compute phase (kill, hang) vs the
    post-compute phase (slow, drift).  Returns extra nanoseconds to
    fold into the envelope's reported execution time (slow faults).
    """
    if fault is None:
        return 0
    kind = fault[0]
    if before:
        if kind == "kill":
            # Die the way a segfaulted worker would: no unwinding, no
            # result — the coordinator sees BrokenProcessPool.
            os._exit(17)
        if kind == "hang":
            time.sleep(fault[1])
        return 0
    if kind == "slow":
        return int(fault[1] * 1e9)
    if kind == "drift":
        apply_drift(programmed, fault[1], fault[2])
    return 0


def _serve_batch(
    spec: WorkerSpec,
    executor: PrimeExecutor,
    programmed: list[ProgrammedLayer],
    batch: np.ndarray,
    noise_seed: int | None,
    ship: bool,
    init_delta=None,
) -> ResultEnvelope:
    """Run one micro-batch and envelope the result.

    Shared by both dispatchers so serial and process mode produce their
    telemetry deltas through the *same* code path — the arithmetic that
    makes merged counter totals bit-identical across modes.  Execution
    wall time is measured even with shipping off, so the coordinator's
    per-stage latency accounting works in every mode.
    """
    if ship:
        result, delta, execute_ns = run_scoped(
            run_programmed, spec, executor, programmed, batch, noise_seed
        )
        return ResultEnvelope(
            value=result,
            worker=os.getpid(),
            execute_ns=execute_ns,
            telemetry=None if delta.empty else delta,
            init_telemetry=init_delta,
        )
    start = time.perf_counter_ns()
    result = run_programmed(spec, executor, programmed, batch, noise_seed)
    return ResultEnvelope(
        value=result,
        worker=os.getpid(),
        execute_ns=time.perf_counter_ns() - start,
    )


def _pool_init(payload: bytes) -> None:
    global _WORKER_STATE, _WORKER_INIT_DELTA, _WORKER_CAL_REF
    spec = pickle.loads(payload)
    if spec.ship_telemetry:
        state, delta, _ = run_scoped(program_state, spec)
        _WORKER_INIT_DELTA = None if delta.empty else delta
    else:
        state = program_state(spec)
    _WORKER_STATE = (spec,) + state
    _WORKER_CAL_REF = capture_reference(spec, *state)


def _pool_run(args: tuple) -> ResultEnvelope:
    global _WORKER_INIT_DELTA
    batch, noise_seed, ship, result_slot, fault = (
        args + (None,) * (5 - len(args))
    )
    if isinstance(batch, ShmRef):
        # Zero-copy input: execute straight off the slab view (the
        # coordinator holds the slot until this batch's future
        # resolves, so the region cannot be rewritten underneath us).
        batch = _worker_view(batch)
    spec, executor, programmed = _WORKER_STATE
    _apply_fault(fault, programmed, before=True)
    envelope = _serve_batch(
        spec,
        executor,
        programmed,
        batch,
        noise_seed,
        ship,
        init_delta=_WORKER_INIT_DELTA if ship else None,
    )
    envelope.execute_ns += _apply_fault(fault, programmed, before=False)
    if ship:
        _WORKER_INIT_DELTA = None
    result = envelope.value
    if (
        result_slot is not None
        and isinstance(result, np.ndarray)
        and result.nbytes <= result_slot.capacity
    ):
        out = np.ndarray(
            result.shape,
            dtype=result.dtype,
            buffer=_WORKER_SLABS[result_slot.name].buf,
            offset=result_slot.offset,
        )
        out[...] = result
        envelope.value = ShmRef(
            result_slot.name,
            result_slot.offset,
            result.shape,
            result.dtype.str,
        )
    return envelope


def _pool_ping() -> int:
    """Worker pid when programmed, 0 otherwise (truthiness = liveness).

    The coordinator records the pid so a hung worker — one sleeping
    inside a batch, which ``shutdown(wait=False)`` cannot interrupt —
    can be SIGKILLed before its slab slots are reclaimed.
    """
    return os.getpid() if _WORKER_STATE is not None else 0


def _pool_drift_probe() -> float:
    """Health probe: relative distance of the calibration outputs from
    the program-time reference (0.0 when probing is not configured)."""
    spec, executor, programmed = _WORKER_STATE
    return drift_distance(spec, executor, programmed, _WORKER_CAL_REF)


def _pool_reprogram() -> float:
    """Re-program this worker's replica in place; returns the measured
    worker-side wall seconds (the background reprogramming cost)."""
    spec, executor, programmed = _WORKER_STATE
    start = time.perf_counter()
    reprogram_state(spec, programmed)
    return time.perf_counter() - start


class SerialDispatcher:
    """In-process fallback: programmed copies served inline.

    ``dispatch`` returns an already-resolved :class:`Future` holding a
    :class:`~repro.telemetry.shipping.ResultEnvelope`, so the runtime
    drives both dispatchers identically — including telemetry shipping:
    serial execution records into the same scratch-session envelope a
    pool worker would, and the runtime merges it back the same way.

    The initial replicas share a single lazily-programmed state (they
    are bit-identical by construction, and serial mode has no real
    parallelism to exploit); :meth:`grow` programs a fresh state per
    added replica so the autoscaler's scale-up cost stays explicit and
    measured even in serial mode.
    """

    mode = "serial"

    #: Serial dispatch resolves each future inline, so there is never
    #: more than one batch in flight and no limit to enforce.
    inflight_limit: int | None = None

    def __init__(self, spec: WorkerSpec, replicas: int = 1) -> None:
        self.spec = spec
        self.replicas = replicas
        #: Programmed states (executor, programmed, cal_ref), indexed
        #: by replica; replicas beyond the list share the first
        #: (initial-deploy) state.
        self._states: list[tuple] = []
        self._init_delta = None

    def _program(self) -> tuple:
        executor, programmed = program_state(self.spec)
        return (
            executor,
            programmed,
            capture_reference(self.spec, executor, programmed),
        )

    def _ensure(self, replica: int = 0):
        if not self._states:
            if self.spec.ship_telemetry:
                state, delta, _ = run_scoped(self._program)
                self._init_delta = None if delta.empty else delta
            else:
                state = self._program()
            self._states.append(state)
        return self._states[min(replica, len(self._states) - 1)]

    def dispatch(
        self,
        batch: np.ndarray,
        noise_seed: int | None = None,
        ship: bool = False,
        replica: int | None = None,
        fault: tuple | None = None,
    ) -> Future:
        executor, programmed, _ = self._ensure(
            0 if replica is None else replica % max(self.replicas, 1)
        )
        future: Future = Future()
        if fault is not None and fault[0] in ("kill", "hang"):
            # Serial mode cannot lose or stall a worker process — it
            # *is* the coordinator — so both present as a crash.
            future.set_exception(
                WorkerCrash(f"injected {fault[0]} fault")
            )
            return future
        envelope = _serve_batch(
            self.spec,
            executor,
            programmed,
            batch,
            noise_seed,
            ship,
            init_delta=self._init_delta if ship else None,
        )
        if fault is not None:
            if fault[0] == "slow":
                envelope.execute_ns += int(fault[1] * 1e9)
            elif fault[0] == "drift":
                apply_drift(programmed, fault[1], fault[2])
        future.set_result(envelope)
        if ship:
            self._init_delta = None
        return future

    def restart_replica(self, replica: int) -> float:
        """Re-program a replica's state in place after an injected
        crash; returns the measured programming wall seconds."""
        self._ensure()
        idx = min(replica % max(self.replicas, 1), len(self._states) - 1)
        start = time.perf_counter()
        self._states[idx] = self._program()
        return time.perf_counter() - start

    def probe_replica(self, replica: int) -> Future:
        """Resolved future holding the replica's drift distance."""
        executor, programmed, cal_ref = self._ensure(
            replica % max(self.replicas, 1)
        )
        future: Future = Future()
        future.set_result(
            drift_distance(self.spec, executor, programmed, cal_ref)
        )
        return future

    def reprogram_replica(self, replica: int) -> float:
        """Re-program a drifted replica's arrays from their stored
        levels; returns the measured wall seconds."""
        _, programmed, _ = self._ensure(replica % max(self.replicas, 1))
        start = time.perf_counter()
        reprogram_state(self.spec, programmed)
        return time.perf_counter() - start

    def grow(self, replicas: int = 1) -> float:
        """Add replicas, programming one fresh state each; returns the
        measured one-time programming wall seconds."""
        self._ensure()
        start = time.perf_counter()
        for _ in range(replicas):
            self._states.append(self._program())
        self.replicas += replicas
        return time.perf_counter() - start

    def shrink(self, replicas: int = 1) -> float:
        """Drop replicas (and their grown states); returns 0.0 — serial
        teardown is free."""
        if replicas >= self.replicas:
            raise ConfigurationError(
                "cannot shrink below one replica"
            )
        for _ in range(replicas):
            if len(self._states) > 1:
                self._states.pop()
        self.replicas -= replicas
        return 0.0

    def resident_bytes(self) -> int:
        """Programmed-state RAM this dispatcher holds: one copy for the
        shared initial replicas plus one per grown state."""
        return spec_resident_bytes(self.spec) * max(1, len(self._states))

    def close(self) -> None:
        self._states = []
        self._init_delta = None


class _StateLock:
    """Reader-writer lock over one shared programmed state.

    Micro-batches are pure reads of the frozen weight/conductance
    stacks and take the read side concurrently; state mutations (drift
    injection, background reprogramming, first-batch calibration, and
    the serialised fallback execution path) take the exclusive write
    side.  Writers are preferred — a pending writer blocks new readers
    — so reprogramming cannot starve behind a steady batch stream.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextlib.contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class ThreadDispatcher:
    """N replica threads serving ONE shared programmed copy per tenant.

    PRIME's replicas share *stationary* programmed weights; process
    replicas emulate that with one private copy (and one programming
    pass) per OS process, paying spawn + program on every scale-up and
    IPC on every batch.  Thread replicas instead run against a single
    :func:`program_state` copy: fused/compiled execution is pure
    read-only NumPy matmuls over frozen conductance stacks (and NumPy
    releases the GIL inside them), so per-replica single-thread pools
    evaluate concurrently while

    * batch payloads and results move as plain ndarray references —
      zero-copy by construction, no slabs, no pickling;
    * scale-up allocates only per-thread scratch workspaces
      (:meth:`~repro.perf.plan.CompiledPlan.prewarm` — microseconds,
      vs fork + program for a process replica);
    * N replicas cost one weight-copy of RAM instead of N
      (:meth:`resident_bytes`).

    Noise-on batches draw from private per-task streams
    (:func:`run_programmed_shared`), so results stay
    routing-independent and bit-identical to
    ``ServingRuntime.reference`` in both regimes.  Workloads whose
    kernels cannot take the re-entrant fused path (remapped tiles,
    non-ideal arrays with noise off, per-engine noise fallbacks)
    serialise every batch under the state write lock — correct, just
    without parallel speedup.

    Fault model: threads cannot be SIGKILLed.  An injected ``kill``
    surfaces as :class:`WorkerCrash`; a ``hang`` really sleeps but
    wakes early when its replica's cancellation event fires —
    :meth:`restart_replica` is cooperative cancellation plus a fresh
    pool (cost: microseconds), and the runtime's existing
    quarantine/retire/degrade-to-serial machinery does the rest.
    ``drift`` mutates the *shared* copy (all replicas see it — one
    copy is the point), and :meth:`reprogram_replica` heals all
    replicas at once for the same reason.
    """

    mode = "thread"

    def __init__(self, spec: WorkerSpec, replicas: int = 1) -> None:
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        self.spec = spec
        # One programmed copy, made on the coordinator thread — with
        # telemetry on, its programming/calibration records straight
        # into the live session (no scratch-session shipping, which
        # swaps a process-global and is not thread-safe).
        executor, programmed = program_state(spec)
        self._state: tuple | None = (
            executor,
            programmed,
            capture_reference(spec, executor, programmed),
        )
        self._lock = _StateLock()
        self._calibrated = spec.calibration is not None
        self._parallel = self._probe_parallel(programmed)
        if not self._parallel and telemetry.enabled():
            telemetry.count("serve.dispatch.thread_serialized")
        self._pools: list[ThreadPoolExecutor] = []
        self._cancels: list[threading.Event] = []
        self._rr = 0
        for _ in range(replicas):
            self._add_replica()
        self._prewarm_workspaces()

    def _probe_parallel(self, programmed) -> bool:
        """Whether concurrent execution over the shared copy is safe.

        Exactly the regimes whose hot paths are re-entrant: the fused
        noise-free integer path and the fused noisy path (under
        per-task private noise streams).  Anything that would fall to
        the per-engine tile walk — remapped tiles, non-ideal arrays
        with noise off, split RNGs, ``PRIME_FUSED=0`` — serialises
        under the write lock instead.
        """
        if not fused_enabled():
            return False
        kernels = [entry.kernel for entry in programmed]
        return all(
            k.can_fuse(with_noise=self.spec.with_noise) for k in kernels
        )

    def _add_replica(self) -> None:
        index = len(self._pools)
        self._cancels.append(threading.Event())
        self._pools.append(
            ThreadPoolExecutor(
                max_workers=1,
                thread_name_prefix=f"serve-replica-{index}",
            )
        )

    def _prewarm_workspaces(self) -> None:
        """Pre-lease one plan workspace per replica thread.

        The entire scale-up cost of a thread replica: when the shared
        copy already carries a compiled plan (a calibration batch at
        program time compiles it), the new thread's scratch buffers
        are allocated here instead of on its first batch.
        """
        state = self._state
        if state is None:
            return
        plan = getattr(state[1][0], "compiled_plan", None)
        if plan is not None:
            plan.prewarm(len(self._pools))

    @property
    def replicas(self) -> int:
        return len(self._pools)

    @property
    def inflight_limit(self) -> int | None:
        """Same pipelining depth process mode gets from its slab
        slots: a few batches in flight per replica keeps every thread
        busy without unbounded queue growth."""
        return _SLAB_SLOTS * max(1, len(self._pools))

    def resident_bytes(self) -> int:
        """One programmed copy, however many replica threads serve it."""
        return spec_resident_bytes(self.spec)

    def _task(
        self,
        batch: np.ndarray,
        noise_seed: int | None,
        fault: tuple | None,
        cancel: threading.Event,
        replica: int,
    ) -> ResultEnvelope:
        if cancel.is_set():
            raise WorkerCrash("replica thread retired")
        state = self._state
        if state is None:
            raise WorkerCrash("dispatcher closed")
        spec = self.spec
        executor, programmed, _ = state
        if fault is not None:
            if fault[0] == "kill":
                # Threads cannot be SIGKILLed; the injected crash
                # surfaces as an exception the runtime's crash
                # recovery handles like a dead worker.
                raise WorkerCrash("injected kill fault")
            if fault[0] == "hang":
                # A real stall — but cooperative: the replica's
                # cancellation event (set by restart_replica) wakes it
                # early, so a hung thread never outlives its recovery.
                if cancel.wait(fault[1]):
                    raise WorkerCrash("hung task cancelled cooperatively")
        start = time.perf_counter_ns()
        if self._parallel and self._calibrated:
            with self._lock.read():
                result = run_programmed_shared(
                    spec, executor, programmed, batch, noise_seed
                )
        else:
            # Exclusive: either the first batch still has calibration
            # to freeze (a state mutation), or this workload's kernels
            # cannot take the re-entrant path at all.
            with self._lock.write():
                if self._parallel:
                    result = run_programmed_shared(
                        spec, executor, programmed, batch, noise_seed
                    )
                else:
                    result = run_programmed(
                        spec, executor, programmed, batch, noise_seed
                    )
                self._calibrated = True
        execute_ns = time.perf_counter_ns() - start
        if fault is not None:
            if fault[0] == "slow":
                execute_ns += int(fault[1] * 1e9)
            elif fault[0] == "drift":
                with self._lock.write():
                    apply_drift(programmed, fault[1], fault[2])
        return ResultEnvelope(
            value=result, worker=replica, execute_ns=execute_ns
        )

    def dispatch(
        self,
        batch: np.ndarray,
        noise_seed: int | None = None,
        ship: bool = False,
        replica: int | None = None,
        fault: tuple | None = None,
    ) -> Future:
        # ``ship`` is accepted for interface parity but moot: thread
        # workers record telemetry inline into the live session (the
        # registry and tracer are lock-guarded and the span stack is
        # thread-local), so there is no delta to ship back.
        if replica is None:
            replica = self._rr
            self._rr = (self._rr + 1) % len(self._pools)
        else:
            replica %= len(self._pools)
        return self._pools[replica].submit(
            self._task,
            batch,
            noise_seed,
            fault,
            self._cancels[replica],
            replica,
        )

    def restart_replica(self, replica: int) -> float:
        """Cooperatively cancel and replace one replica thread.

        Sets the replica's cancellation event (waking a hung task),
        retires its pool without waiting, and installs a fresh
        single-thread pool with warm workspaces.  The shared
        programmed state needs no re-programming — the thread was the
        problem, not the copy — so the measured cost is buffer
        allocation, microseconds.
        """
        replica %= len(self._pools)
        start = time.perf_counter()
        self._cancels[replica].set()
        try:
            self._pools[replica].shutdown(
                wait=False, cancel_futures=True
            )
        except Exception:  # pragma: no cover - pool already broken
            pass
        self._cancels[replica] = threading.Event()
        self._pools[replica] = ThreadPoolExecutor(
            max_workers=1,
            thread_name_prefix=f"serve-replica-{replica}",
        )
        self._prewarm_workspaces()
        return time.perf_counter() - start

    def _probe_task(self) -> float:
        state = self._state
        if state is None:
            raise WorkerCrash("dispatcher closed")
        executor, programmed, cal_ref = state
        lock = self._lock.read() if self._parallel else self._lock.write()
        with lock:
            return drift_distance(self.spec, executor, programmed, cal_ref)

    def probe_replica(self, replica: int) -> Future:
        """Submit the drift health probe to one replica's thread."""
        return self._pools[replica % len(self._pools)].submit(
            self._probe_task
        )

    def reprogram_replica(self, replica: int) -> float:
        """Re-program the shared copy from its stored levels.

        Taken under the exclusive write lock (in-flight batches finish
        first, queued ones wait), and because every replica serves the
        same copy, one reprogramming heals them all.  Returns the
        measured wall seconds.
        """
        state = self._state
        if state is None:
            raise WorkerCrash("dispatcher closed")
        start = time.perf_counter()
        with self._lock.write():
            reprogram_state(self.spec, state[1])
        return time.perf_counter() - start

    def grow(self, replicas: int = 1) -> float:
        """Add replica threads; returns the measured wall seconds.

        No programming, no fork: a new single-thread pool plus
        prewarmed scratch workspaces — the microsecond-scale scale-up
        the autoscaler's measured-cost EMA then reflects.
        """
        if replicas < 1:
            raise ConfigurationError("grow needs replicas >= 1")
        start = time.perf_counter()
        for _ in range(replicas):
            self._add_replica()
        self._prewarm_workspaces()
        return time.perf_counter() - start

    def shrink(self, replicas: int = 1) -> float:
        """Retire the newest replica threads (drained by the caller)."""
        if replicas >= len(self._pools):
            raise ConfigurationError("cannot shrink below one replica")
        for _ in range(replicas):
            self._cancels.pop().set()
            self._pools.pop().shutdown(wait=False, cancel_futures=True)
        self._rr %= len(self._pools)
        return 0.0

    def close(self) -> None:
        """Cancel every replica thread and drop the shared copy."""
        for cancel in self._cancels:
            cancel.set()
        for pool in self._pools:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - best effort
                pass
        self._pools = []
        self._cancels = []
        self._state = None


class _ShmFuture:
    """Future adapter that materialises a slab-resident result.

    Resolves the pool future, copies the result out of the shared
    slot (workers only hold the slot until then), and releases the
    slot exactly once.  A timeout leaves the slot held — the worker
    may still be writing into it; the recovery path (restart the
    replica, which kills the worker and reclaims its slab's slots)
    then calls :meth:`abandon` so this future never frees the slot a
    second time.
    """

    def __init__(self, inner: Future, slabs: _SlabPool, key) -> None:
        self._inner = inner
        self._slabs = slabs
        self._key = key
        self._envelope = None

    def result(self, timeout: float | None = None) -> ResultEnvelope:
        if self._key is None:
            return self._envelope
        try:
            envelope = self._inner.result(timeout)
        except (TimeoutError, _FuturesTimeout):
            raise
        except BaseException:
            self._slabs.release(*self._key)
            self._key = None
            raise
        value = envelope.value
        if isinstance(value, ShmRef):
            envelope.value = self._slabs.view(value).copy()
        else:
            # Worker-side fallback: the result outgrew the slot (e.g.
            # a network reprogrammed to a wider head) and was pickled.
            telemetry.count("serve.dispatch.shm_fallback", reason="result")
        self._slabs.release(*self._key)
        self._key = None
        self._envelope = envelope
        return envelope

    def abandon(self) -> None:
        """Detach from the slab slot without releasing it.

        Called after the slot's replica was restarted: the restart
        already reclaimed (and re-generationed) the slot, so a release
        from this future would be stale.  Idempotent; a later
        ``result()`` on an abandoned future returns nothing useful and
        must not be relied on.
        """
        self._key = None

    def done(self) -> bool:
        return self._inner.done()


class ProcessDispatcher:
    """Per-replica persistent worker pools with programmed state.

    Every replica bank group gets its *own* single-worker
    ``ProcessPoolExecutor`` (the worker programs its copy exactly once,
    in the pool initializer), so batch → replica routing is explicit:
    the coordinator can keep each replica's queue saturated
    independently, and a replica grant can grow or shrink live — grow
    spawns one more pool (its programming cost is measured and
    returned), shrink retires the newest pool after the runtime drains
    it.  ``slab_shape=(max_batch, in_elems, out_elems)`` enables the
    shared-memory payload path: per-replica slabs sized for
    ``max_batch`` samples of the widest layer, pinned to their
    replica's pool.  Without it (or with ``PRIME_SHM=0``) every batch
    pickles through the pool pipe.
    """

    mode = "process"

    def __init__(
        self,
        spec: WorkerSpec,
        replicas: int,
        slab_shape: tuple[int, int, int] | None = None,
        defer_spawn: bool = False,
    ) -> None:
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        self.spec = spec
        # Start the multiprocessing resource tracker before the pools
        # fork so every worker inherits it: attaching a slab then
        # registers into the same tracker (an idempotent set add, and
        # the coordinator's unlink clears it once) instead of spawning
        # a per-worker tracker that would try to clean the slab a
        # second time at worker exit.
        try:
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker is best-effort
            pass
        self._payload = pickle.dumps(spec)
        self._pools: list[ProcessPoolExecutor] = []
        self._pids: list[int] = []
        self._rr = 0
        #: In-flight deferred spawn: ``(pools, probes)`` whose workers
        #: are forking and programming in the background, not yet
        #: awaited.  With ``defer_spawn`` the constructor returns as
        #: soon as the probes are submitted, so a multi-tenant deploy
        #: starts every tenant's programming concurrently and only then
        #: awaits them (:meth:`finish_spawn`) — cluster startup wall
        #: time stops scaling with tenant x replica count.
        self._pending_spawn: tuple[list, list] | None = None
        try:
            if defer_spawn:
                self._pending_spawn = self._begin_spawn(replicas)
            else:
                self._spawn(replicas)
        except BaseException:
            self.close()
            raise
        self._slabs: _SlabPool | None = None
        self._slab_bytes: tuple[int, int] | None = None
        if slab_shape is not None and shm_enabled():
            max_batch, in_elems, out_elems = slab_shape
            self._slab_bytes = (
                max_batch * in_elems * 8,
                max_batch * out_elems * 8,
            )
            try:
                self._slabs = _SlabPool(
                    replicas, _SLAB_SLOTS, *self._slab_bytes
                )
            except OSError as exc:
                logger.warning(
                    "shared-memory slabs unavailable (%s: %s); "
                    "dispatching pickled batches",
                    type(exc).__name__,
                    exc,
                )
                warnings.warn(
                    "shared-memory slabs unavailable "
                    f"({type(exc).__name__}); dispatching pickled "
                    "batches",
                    ParallelFallbackWarning,
                    stacklevel=2,
                )
                telemetry.count(
                    "serve.dispatch.shm_fallback", reason="unavailable"
                )

    @property
    def replicas(self) -> int:
        pending = getattr(self, "_pending_spawn", None)
        return len(self._pools) + (len(pending[0]) if pending else 0)

    def _begin_spawn(self, n: int) -> tuple[list, list]:
        """Start ``n`` replica pools without awaiting their workers.

        Creating the pools and submitting the ping probes is what
        actually kicks off each worker's fork + one-time
        ``program_state`` (the pool initializer runs before the probe
        can answer), so after this returns all ``n`` replicas are
        programming concurrently in the background.  The returned
        ``(pools, probes)`` must be passed to :meth:`_finish_spawn`
        before the pools are used.
        """
        pools = [
            ProcessPoolExecutor(
                max_workers=1,
                initializer=_pool_init,
                initargs=(self._payload,),
            )
            for _ in range(n)
        ]
        try:
            probes = [pool.submit(_pool_ping) for pool in pools]
        except BaseException:
            for pool in pools:
                try:
                    pool.shutdown(wait=False, cancel_futures=True)
                except Exception:  # pragma: no cover - best effort
                    pass
            raise
        return pools, probes

    def _finish_spawn(self, pending: tuple[list, list]) -> None:
        """Await a batch of started pools and adopt them.

        The new pools only join :attr:`_pools` once every probe has
        answered — a partial spawn failure shuts the batch of new pools
        down and leaves the dispatcher exactly as it was, so a later
        ``grow()`` retry starts clean.
        """
        pools, probes = pending
        try:
            timeout = pool_timeout_s()
            pids = []
            for probe in probes:
                pid = probe.result(timeout=timeout)
                if not pid:
                    raise BrokenProcessPool(
                        "pool worker failed to initialise"
                    )
                pids.append(pid)
        except BaseException:
            for pool in pools:
                try:
                    pool.shutdown(wait=False, cancel_futures=True)
                except Exception:  # pragma: no cover - best effort
                    pass
            raise
        self._pools.extend(pools)
        self._pids.extend(pids)

    def _spawn(self, n: int) -> None:
        """Start ``n`` replica pools and wait for their workers.

        Programming happens in the pool initializer, so an environment
        that cannot host a pool (no fork, broken pickling) fails here,
        where ``make_dispatcher`` can still fall back to serial, not on
        the first real request.  The ping probes are submitted to every
        new pool before any is awaited (:meth:`_begin_spawn`), so
        replica programming overlaps.
        """
        self._finish_spawn(self._begin_spawn(n))

    def finish_spawn(self) -> None:
        """Await a construction-time deferred spawn, if one is pending.

        Idempotent; every dispatch/control entry point calls it, so a
        caller that never explicitly finishes a deferred deploy still
        gets a fully-spawned dispatcher on first use.  A spawn failure
        propagates here (once — the pending batch is consumed), where
        the deployer can still fall back to serial.
        """
        pending = self._pending_spawn
        if pending is None:
            return
        self._pending_spawn = None
        self._finish_spawn(pending)

    @property
    def inflight_limit(self) -> int | None:
        """Batches the runtime may leave unresolved before collecting.

        With slabs active this is the total slot count — dispatching
        past it would only downgrade batches to pickling, so the
        runtime applies backpressure instead.  ``None`` (pickle mode)
        leaves the inflight depth unbounded.
        """
        if self._slabs is None:
            return None
        return self._slabs.slots * self.replicas

    def dispatch(
        self,
        batch: np.ndarray,
        noise_seed: int | None = None,
        ship: bool = False,
        replica: int | None = None,
        fault: tuple | None = None,
    ) -> Future:
        self.finish_spawn()
        if replica is None:
            replica = self._rr
            self._rr = (self._rr + 1) % len(self._pools)
        else:
            replica %= len(self._pools)
        pool = self._pools[replica]
        slabs = self._slabs
        if slabs is not None:
            if (
                batch.nbytes > slabs.in_bytes
                or not batch.flags.c_contiguous
            ):
                telemetry.count(
                    "serve.dispatch.shm_fallback", reason="size"
                )
            else:
                key = slabs.acquire(replica)
                if key is None:
                    telemetry.count(
                        "serve.dispatch.shm_fallback", reason="slots"
                    )
                else:
                    in_ref, result_slot = slabs.stage(key, batch)
                    inner = pool.submit(
                        _pool_run,
                        (in_ref, noise_seed, ship, result_slot, fault),
                    )
                    telemetry.count("serve.dispatch.shm_batches")
                    return _ShmFuture(inner, slabs, key)
        return pool.submit(
            _pool_run, (batch, noise_seed, ship, None, fault)
        )

    def restart_replica(self, replica: int) -> float:
        """Kill and respawn one replica's worker pool in place.

        The crash/hang recovery path: SIGKILL the worker (a hung worker
        sleeps through ``shutdown(wait=False)``), retire its pool,
        reclaim its slab slots (the killed worker can no longer write
        into them), and bring up a fresh pool that re-programs the
        replica in its initializer.  Returns the measured wall seconds
        — kill + fork + one-time ``program_state``.  Raises when the
        respawn itself fails; the caller retires the replica then.
        """
        self.finish_spawn()
        replica %= len(self._pools)
        start = time.perf_counter()
        pid = self._pids[replica]
        if pid:
            try:
                os.kill(pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass
        try:
            self._pools[replica].shutdown(
                wait=False, cancel_futures=True
            )
        except Exception:  # pragma: no cover - pool already broken
            pass
        self._pids[replica] = 0
        if self._slabs is not None:
            self._slabs.reclaim_replica(replica)
        pool = ProcessPoolExecutor(
            max_workers=1,
            initializer=_pool_init,
            initargs=(self._payload,),
        )
        try:
            pid = pool.submit(_pool_ping).result(timeout=pool_timeout_s())
            if not pid:
                raise BrokenProcessPool(
                    "respawned pool worker failed to initialise"
                )
        except BaseException:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - best effort
                pass
            raise
        self._pools[replica] = pool
        self._pids[replica] = pid
        return time.perf_counter() - start

    def probe_replica(self, replica: int) -> Future:
        """Submit the drift health probe to one replica's worker."""
        self.finish_spawn()
        return self._pools[replica % len(self._pools)].submit(
            _pool_drift_probe
        )

    def reprogram_replica(self, replica: int) -> float:
        """Re-program a drifted replica in its worker (blocking);
        returns the measured worker-side wall seconds."""
        self.finish_spawn()
        pool = self._pools[replica % len(self._pools)]
        return pool.submit(_pool_reprogram).result(
            timeout=pool_timeout_s()
        )

    def grow(self, replicas: int = 1) -> float:
        """Spawn ``replicas`` more programmed workers (and slabs).

        Returns the measured wall seconds the scale-up cost: pool fork
        plus the one-time ``program_state`` in each new worker's
        initializer.
        """
        if replicas < 1:
            raise ConfigurationError("grow needs replicas >= 1")
        self.finish_spawn()
        start = time.perf_counter()
        self._spawn(replicas)
        if self._slabs is not None:
            for _ in range(replicas):
                self._slabs.add_replica()
        return time.perf_counter() - start

    def shrink(self, replicas: int = 1) -> float:
        """Retire the newest ``replicas`` worker pools.

        The caller (the runtime's ``scale_to``) must have drained every
        inflight batch first — a held slab slot on a retiring replica
        raises rather than corrupting the slab pool.
        """
        self.finish_spawn()
        if replicas >= len(self._pools):
            raise ConfigurationError("cannot shrink below one replica")
        for _ in range(replicas):
            if self._slabs is not None:
                self._slabs.remove_replica()
            self._pools.pop().shutdown(wait=False, cancel_futures=True)
            self._pids.pop()
        self._rr %= len(self._pools)
        return 0.0

    def resident_bytes(self) -> int:
        """Programmed-state RAM: one private copy per replica worker."""
        return spec_resident_bytes(self.spec) * max(1, self.replicas)

    def close(self) -> None:
        """Shut every pool down and release the slabs.

        Idempotent and exception-safe: closing twice, or closing after
        a worker crash left a pool broken, still releases every slab —
        a broken pool's shutdown can raise, and that must not leak the
        shared memory the other replicas hold.
        """
        pending = getattr(self, "_pending_spawn", None)
        if pending is not None:
            self._pending_spawn = None
            for pool in pending[0]:
                try:
                    pool.shutdown(wait=False, cancel_futures=True)
                except Exception:  # pragma: no cover - best effort
                    pass
        for pool in self._pools:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - pool already broken
                pass
        self._pools = []
        self._pids = []
        if getattr(self, "_slabs", None) is not None:
            try:
                self._slabs.close()
            finally:
                self._slabs = None


#: Exceptions a pool spawn can die with in environments that cannot
#: host worker processes (no fork, broken pickling, sandboxed
#: semaphores, slow-start timeouts) — exactly the set ``"auto"`` mode
#: degrades to serial on, exported so deferred-spawn finishers
#: (``ServingRuntime.finish_deploy``) apply the same policy.
POOL_SPAWN_FAILURES = (
    OSError,
    AttributeError,
    TimeoutError,
    _FuturesTimeout,
    BrokenProcessPool,
    pickle.PicklingError,
)


def serial_fallback(
    spec: WorkerSpec, replicas: int, exc: BaseException
) -> SerialDispatcher:
    """Degrade a failed pool deployment to a serial dispatcher.

    The standard announcement trio — log, a
    :class:`~repro.perf.parallel.ParallelFallbackWarning`, and a
    ``serve.dispatch.fallback`` counter — then the in-process
    dispatcher with identical results.
    """
    logger.warning(
        "serve worker pool unavailable (%s: %s); dispatching "
        "serially in-process",
        type(exc).__name__,
        exc,
    )
    warnings.warn(
        f"serve worker pool unavailable ({type(exc).__name__}); "
        "dispatching serially in-process",
        ParallelFallbackWarning,
        stacklevel=3,
    )
    telemetry.count(
        "serve.dispatch.fallback", reason=type(exc).__name__
    )
    return SerialDispatcher(spec, replicas)


def make_dispatcher(
    spec: WorkerSpec,
    replicas: int,
    mode: str = "auto",
    slab_shape: tuple[int, int, int] | None = None,
    defer_spawn: bool = False,
):
    """Build the replica dispatcher for a deployment.

    ``mode="thread"`` runs replica threads over one shared programmed
    copy; ``mode="process"``/``"auto"`` try the persistent pool first,
    where ``"auto"`` degrades to serial (:func:`serial_fallback`) when
    no pool can be created while ``"process"`` propagates the failure.
    ``mode="serial"`` skips both.  A ``PRIME_DISPATCH`` environment
    override (:func:`dispatch_mode`) steers ``"auto"`` deployments
    only — explicit modes always win.  ``slab_shape`` (max_batch,
    input elems, output elems — the runtime derives it from the
    micro-batcher and the plan's widest layer) sizes the shared-memory
    payload slabs of process mode.  ``defer_spawn`` makes process-mode
    construction return with its workers still forking/programming in
    the background; the first use (or an explicit
    ``finish_spawn()``/``finish_deploy()``) awaits them.
    """
    if mode not in ("auto", "thread", "process", "serial"):
        raise ConfigurationError(
            "serve mode must be auto|thread|process|serial, got "
            f"{mode!r}"
        )
    if mode == "auto":
        override = dispatch_mode()
        if override is not None:
            mode = override
    if mode == "serial" or (mode == "auto" and replicas <= 1):
        return SerialDispatcher(spec, replicas)
    if mode == "thread":
        return ThreadDispatcher(spec, replicas)
    try:
        return ProcessDispatcher(
            spec,
            replicas,
            slab_shape=slab_shape,
            defer_spawn=defer_spawn,
        )
    except POOL_SPAWN_FAILURES as exc:
        if mode == "process":
            raise
        return serial_fallback(spec, replicas, exc)
