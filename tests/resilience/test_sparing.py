"""Fault-aware mapping: column sparing, tile remap, zero-masking."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import telemetry
from repro.core.compiler import PrimeCompiler
from repro.core.executor import PrimeExecutor
from repro.crossbar.engine import CrossbarMVMEngine
from repro.crossbar.pair import DifferentialPair
from repro.device.faults import FAULT_RATES_ENV, FaultMap, env_fault_rates
from repro.errors import (
    ConfigurationError,
    CrossbarError,
    MappingError,
)
from repro.nn.topology import parse_topology
from repro.params.crossbar import CrossbarParams
from repro.params.memory import MemoryOrganization
from repro.params.prime import PrimeConfig
from repro.params.reram import PT_TIO2_DEVICE
from repro.resilience import ResiliencePolicy

pytestmark = pytest.mark.resilience

NOISE_FREE = dataclasses.replace(
    PT_TIO2_DEVICE, programming_sigma=0.0, read_noise_sigma=0.0
)
SMALL_ORG = MemoryOrganization(
    subarrays_per_bank=8,
    mats_per_subarray=16,
    mat_rows=32,
    mat_cols=32,
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    yield
    telemetry.disable()


def _small_params(**overrides) -> CrossbarParams:
    kw = dict(rows=32, cols=32, sense_amps=8, device=NOISE_FREE)
    kw.update(overrides)
    return CrossbarParams(**kw)


def _small_config(policy: ResiliencePolicy, **xbar) -> PrimeConfig:
    return PrimeConfig(
        crossbar=_small_params(**xbar),
        organization=SMALL_ORG,
        resilience=policy,
    )


def _broken_column_engine(
    params: CrossbarParams, bad_col: int, rows_used: int
) -> CrossbarMVMEngine:
    """An engine whose logical column ``bad_col`` is unrepairable: the
    positive hi bitline is stuck at LRS while its negative complement
    is stuck at HRS, so differential compensation has nothing to move."""
    pos = FaultMap.none(params.rows, params.cols)
    neg = FaultMap.none(params.rows, params.cols)
    pos.stuck_lrs[:rows_used, 2 * bad_col] = True
    neg.stuck_hrs[:rows_used, 2 * bad_col] = True
    engine = CrossbarMVMEngine(params)
    engine.pair = DifferentialPair(params, fault_maps=(pos, neg))
    return engine


def _clean_analog_engine(params: CrossbarParams) -> CrossbarMVMEngine:
    """A fault-free engine forced onto the analog read path (empty
    fault maps defeat the exact integer fast path) so its outputs are
    directly comparable to a spared engine's."""
    engine = CrossbarMVMEngine(params)
    engine.pair = DifferentialPair(
        params,
        fault_maps=(
            FaultMap.none(params.rows, params.cols),
            FaultMap.none(params.rows, params.cols),
        ),
    )
    return engine


def _weights(rng, rows, cols, bad_col):
    w = rng.integers(-255, 256, size=(rows, cols))
    # Small weights in the broken column leave the hi half at 0, so the
    # stuck-at-LRS bitline shows the full per-cell error.
    w[:, bad_col] = rng.integers(-15, 16, size=rows)
    return w


class TestColumnSparing:
    def test_broken_column_routed_to_spare(self, rng):
        params = _small_params()
        policy = ResiliencePolicy(verify_writes=True, spare_columns=2)
        w = _weights(rng, 16, 6, bad_col=3)
        engine = _broken_column_engine(params, bad_col=3, rows_used=16)
        report = engine.program(w, resilience=policy)
        assert engine.spared_columns == 1
        assert engine.remapped
        assert not engine.degraded
        assert engine.masked_columns == 0
        assert not report.clean
        clean = _clean_analog_engine(params)
        clean.program(w)
        inputs = rng.integers(0, 64, size=(5, 16))
        np.testing.assert_array_equal(
            engine.mvm_batch(inputs, with_noise=False),
            clean.mvm_batch(inputs, with_noise=False),
        )
        # Single-vector path goes through the same gather.
        np.testing.assert_array_equal(
            engine.mvm(inputs[0], with_noise=False),
            clean.mvm(inputs[0], with_noise=False),
        )

    def test_no_spares_masks_column_to_zero(self, rng):
        params = _small_params()
        policy = ResiliencePolicy(
            verify_writes=True, spare_columns=0, mask_error_limit=1000.0
        )
        w = _weights(rng, 16, 6, bad_col=3)
        engine = _broken_column_engine(params, bad_col=3, rows_used=16)
        telemetry.enable()
        engine.program(w, resilience=policy)
        assert engine.degraded
        assert engine.masked_columns == 1
        assert engine.spared_columns == 0
        assert telemetry.counter_total("resilience.dead_columns") == 1
        assert np.all(engine.programmed_weights[:, 3] == 0)
        clean = _clean_analog_engine(params)
        clean.program(w)
        inputs = rng.integers(0, 64, size=(5, 16))
        out = engine.mvm_batch(inputs, with_noise=False)
        ref = clean.mvm_batch(inputs, with_noise=False)
        assert np.all(out[:, 3] == 0)
        keep = [c for c in range(6) if c != 3]
        np.testing.assert_array_equal(out[:, keep], ref[:, keep])

    def test_healthy_columns_consume_no_spares(self, rng):
        params = _small_params()
        policy = ResiliencePolicy(verify_writes=True, spare_columns=4)
        engine = CrossbarMVMEngine(params)
        report = engine.program(
            rng.integers(-255, 256, size=(16, 6)), resilience=policy
        )
        assert report.clean
        assert engine.spared_columns == 0
        assert not engine.remapped


class TestVerifyBitIdentity:
    def test_verified_program_matches_open_loop_on_clean_device(self, rng):
        """The acceptance no-op: on fault-free noise-free arrays the
        resilience path produces bit-identical outputs."""
        params = _small_params()
        w = rng.integers(-255, 256, size=(16, 8))
        inputs = rng.integers(0, 64, size=(7, 16))
        open_loop = CrossbarMVMEngine(params)
        open_loop.program(w)
        verified = CrossbarMVMEngine(params)
        report = verified.program(
            w,
            resilience=ResiliencePolicy(
                verify_writes=True, spare_columns=2
            ),
        )
        assert report.clean
        np.testing.assert_array_equal(
            verified.mvm_batch(inputs, with_noise=False),
            open_loop.mvm_batch(inputs, with_noise=False),
        )


class TestFaultRateKnobs:
    def test_config_rates_build_fault_maps(self):
        params = _small_params(fault_rate_hrs=0.05, fault_rate_lrs=0.05)
        engine = CrossbarMVMEngine(params, rng=np.random.default_rng(0))
        assert engine.pair.positive.cells.fault_map is not None
        assert engine.pair.positive.cells.fault_map.fault_count > 0
        # Independent draws per array half.
        pos = engine.pair.positive.cells.fault_map
        neg = engine.pair.negative.cells.fault_map
        assert not np.array_equal(pos.stuck_hrs, neg.stuck_hrs)

    def test_fault_rates_require_rng(self):
        params = _small_params(fault_rate_hrs=0.01)
        with pytest.raises(CrossbarError):
            CrossbarMVMEngine(params)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            _small_params(fault_rate_hrs=-0.1)
        with pytest.raises(ConfigurationError):
            _small_params(fault_rate_hrs=0.7, fault_rate_lrs=0.7)

    def test_env_knob_parses_and_applies(self, monkeypatch):
        monkeypatch.setenv(FAULT_RATES_ENV, "0.02")
        assert env_fault_rates() == (0.01, 0.01)
        monkeypatch.setenv(FAULT_RATES_ENV, "0.004, 0.006")
        assert env_fault_rates() == (0.004, 0.006)
        engine = CrossbarMVMEngine(
            _small_params(), rng=np.random.default_rng(1)
        )
        assert engine.pair.positive.cells.fault_map is not None

    def test_env_knob_garbage_warns_and_injects_nothing(
        self, monkeypatch, caplog
    ):
        """The knob is read deep inside array construction; a typo must
        degrade to fault-free arrays (warning + counter), not raise."""
        from repro.device import faults

        telemetry.enable()
        monkeypatch.setattr(faults, "_WARNED_VALUES", set())
        for raw in ("nope", "0.1,0.2,0.3", "-0.5", "0.8,0.8"):
            monkeypatch.setenv(FAULT_RATES_ENV, raw)
            with caplog.at_level("WARNING", logger="repro.device"):
                assert env_fault_rates() == (0.0, 0.0)
                # Repeated reads of the same bad value count every time
                # but warn only once.
                assert env_fault_rates() == (0.0, 0.0)
        assert telemetry.counter_value(
            "perf.env.invalid", knob=FAULT_RATES_ENV
        ) == 8
        warned = [
            r.message for r in caplog.records
            if FAULT_RATES_ENV in r.message
        ]
        assert len(warned) == 4


class TestPlanSparing:
    TOPOLOGY = parse_topology("tiny", "24-20-6")

    def test_compiler_reserves_spare_columns(self):
        policy = ResiliencePolicy(verify_writes=True, spare_columns=4)
        config = _small_config(policy)
        plan = PrimeCompiler(config).compile(self.TOPOLOGY)
        logical = config.crossbar.logical_cols
        assert plan.tile_cols == logical - 4
        assert plan.spare_columns == 4
        plan.validate()
        for m in plan.weight_layers:
            assert m.col_blocks >= -(-m.cols // plan.tile_cols)

    def test_validate_catches_underprovisioned_plan(self):
        config = _small_config(
            ResiliencePolicy(verify_writes=True, spare_columns=4)
        )
        plan = PrimeCompiler(config).compile(self.TOPOLOGY)
        thin = dataclasses.replace(plan, tile_cols=1)
        with pytest.raises(MappingError):
            thin.validate()

    def test_config_rejects_overlarge_budgets(self):
        with pytest.raises(ConfigurationError):
            _small_config(
                ResiliencePolicy(verify_writes=True, spare_columns=16)
            )
        with pytest.raises(ConfigurationError):
            _small_config(
                ResiliencePolicy(
                    verify_writes=True, spare_pairs_per_bank=64
                )
            )


class TestExecutorDegradation:
    TOPOLOGY = parse_topology("tiny", "24-20-6")

    def test_program_network_surfaces_summary(self):
        policy = ResiliencePolicy(
            verify_writes=True, spare_columns=2, spare_pairs_per_bank=2
        )
        config = _small_config(
            policy, fault_rate_hrs=0.01, fault_rate_lrs=0.01
        )
        executor = PrimeExecutor(config)
        plan = PrimeCompiler(config).compile(self.TOPOLOGY)
        net = self.TOPOLOGY.build(rng=np.random.default_rng(2))
        telemetry.enable()
        executor.program_network(
            net, plan, rng=np.random.default_rng(3)
        )
        summary = executor.last_degradation
        assert summary is not None
        assert summary.workload == "tiny"
        assert summary.tiles == sum(
            m.row_blocks * m.col_blocks for m in plan.weight_layers
        )
        assert summary.retried_cells > 0
        names = {c["name"] for c in telemetry.snapshot()["counters"]}
        assert "resilience.degraded_tiles" in names

    def test_remap_consumes_spare_pair_budget(self):
        policy = ResiliencePolicy(
            verify_writes=True,
            spare_columns=0,
            spare_pairs_per_bank=3,
            column_error_limit=100.0,
            mask_error_limit=100.0,
        )
        config = _small_config(
            policy, fault_rate_hrs=0.05, fault_rate_lrs=0.05
        )
        executor = PrimeExecutor(config)
        plan = PrimeCompiler(config).compile(self.TOPOLOGY)
        net = self.TOPOLOGY.build(rng=np.random.default_rng(2))
        telemetry.enable()
        executor.program_network(
            net, plan, rng=np.random.default_rng(3)
        )
        summary = executor.last_degradation
        assert summary.remapped_tiles >= 1
        assert telemetry.counter_total("resilience.tile_remaps") == (
            summary.remapped_tiles
        )

    def test_open_loop_run_reports_nothing(self):
        config = _small_config(ResiliencePolicy())
        executor = PrimeExecutor(config)
        plan = PrimeCompiler(config).compile(self.TOPOLOGY)
        net = self.TOPOLOGY.build(rng=np.random.default_rng(2))
        executor.program_network(net, plan)
        assert executor.last_degradation is None

    def test_fault_free_functional_run_bit_identical(self):
        """Enabling resilience on clean arrays must not change a single
        output bit (and run_functional surfaces a clean summary)."""
        net = self.TOPOLOGY.build(rng=np.random.default_rng(4))
        x = np.random.default_rng(5).standard_normal((12, 24))
        outs = {}
        for on in (False, True):
            policy = (
                ResiliencePolicy(
                    verify_writes=True,
                    spare_columns=2,
                    spare_pairs_per_bank=2,
                )
                if on
                else ResiliencePolicy()
            )
            config = _small_config(policy)
            executor = PrimeExecutor(config)
            plan = PrimeCompiler(config).compile(self.TOPOLOGY)
            outs[on] = executor.run_functional(
                net, plan, x, rng=np.random.default_rng(6)
            )
            if on:
                assert executor.last_degradation is not None
                assert executor.last_degradation.clean
            else:
                assert executor.last_degradation is None
        np.testing.assert_array_equal(outs[False], outs[True])
