"""Open-loop multi-tenant cluster benchmark (two co-resident MLP-L).

Tracks the pipelined-dispatch tentpole across PRs: two MLP-L
deployments on disjoint bank grants, driven by a saturating open-loop
arrival process in process mode, must reach >= 1.5x the aggregate
goodput of the same grants served through the synchronous per-model
pump, with per-tenant results bit-identical to
``ServingRuntime.reference`` in both modes and replica idle fractions
reported.

Replica execution is paced (``pace_batch_s``): each micro-batch
occupies its replica for a fixed emulated device service time, the way
a PRIME bank group would be busy while the host coordinates.  That
makes the sync-vs-pipelined comparison a property of the dispatch
policy rather than of the host's core count — on any machine, the
synchronous pump serialises the two tenants' device time while the
pipelined loop overlaps them — and it leaves every computed value
untouched.

Also hosts the 0.8x-saturation tail benchmark: at 80% of per-replica
capacity the open-loop p99 must stay bounded (no queue blow-up), and
its wall time + tail percentiles land in ``BENCH_summary.json`` for
``compare_bench.py``.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.eval.workloads import get_workload
from repro.nn.topology import NetworkTopology
from repro.serve import (
    AutoscalerPolicy,
    ServeConfig,
    ServingCluster,
    TenantSpec,
)

pytestmark = pytest.mark.serve

#: Open-loop requests per tenant per measured run.
REQUESTS = 256
#: Micro-batch size; with REQUESTS this is 8 paced batches per tenant.
MAX_BATCH = 32
#: Emulated device service time per micro-batch (s).
PACE_S = 0.06
#: Batch-formation deadline; generous so saturated queues always ship
#: full batches rather than paced slivers.
MAX_WAIT_S = 0.08
#: Saturating offered load for the goodput gate (everything due
#: immediately; the dispatch policy is the only bottleneck).
SATURATING_RPS = 200_000.0
#: Per-replica service capacity at PACE_S: MAX_BATCH / PACE_S.
CAPACITY_RPS = MAX_BATCH / PACE_S
#: Aggregate goodput ratio the pipelined loop must reach over the
#: synchronous per-model pump (acceptance criterion).
SPEEDUP_FLOOR = 1.5

#: pipelined -> (ClusterReport, {tenant: idle_fraction})
_RUNS: dict[bool, tuple] = {}


def _tenants(rate_rps: float = SATURATING_RPS) -> list[TenantSpec]:
    """Two renamed MLP-L copies with independent weights and traffic."""
    base = get_workload("MLP-L").topology()
    features = int(np.prod(base.input_shape))
    specs = []
    for name, seed in (("mlp-l-a", 7), ("mlp-l-b", 11)):
        topology = NetworkTopology(name, base.specs, base.input_shape)
        network = topology.build(rng=np.random.default_rng(seed))
        samples = np.random.default_rng(seed + 100).random(
            (64, features)
        )
        specs.append(
            TenantSpec(
                topology=topology,
                network=network,
                samples=samples,
                rate_rps=rate_rps,
                seed=seed,
                replicas=1,
                serve_config=ServeConfig(
                    mode="process",
                    max_batch=MAX_BATCH,
                    max_wait_s=MAX_WAIT_S,
                    pace_batch_s=PACE_S,
                ),
                calibration=samples,
            )
        )
    return specs


def _run_cluster(pipelined: bool):
    """One warmed, measured open-loop run; memoised per dispatch mode.

    Verifies per-tenant bit-identity against the reference oracle
    inside the run, so every recorded goodput number is also a
    correctness witness.
    """
    if pipelined in _RUNS:
        return _RUNS[pipelined][0]
    cluster = ServingCluster(_tenants(), pipelined=pipelined)
    with cluster:
        cluster.warmup()
        report = cluster.run(REQUESTS)
        for state in cluster._states:
            done = [r for r in state.requests if r.done]
            got = np.stack([r.result for r in done])
            ref = state.runtime.reference(
                np.stack([r.x for r in done])
            )
            assert np.array_equal(got, ref), (
                f"{state.spec.topology.name} diverged from reference "
                f"(pipelined={pipelined})"
            )
    idle = {
        t.tenant: t.replica_idle_fraction for t in report.tenants
    }
    _RUNS[pipelined] = (report, idle)
    return report


def test_cluster_sync_pump_baseline_mlp_l(once):
    """Synchronous per-model pump on the same grants (the baseline)."""
    report = once(_run_cluster, False)
    assert report.completed == 2 * REQUESTS
    assert report.shed == 0
    assert report.goodput_rps > 0


def test_cluster_pipelined_mlp_l(once):
    """Pipelined multi-model dispatch over the same grants."""
    report = once(_run_cluster, True)
    assert report.completed == 2 * REQUESTS
    assert report.shed == 0
    assert report.goodput_rps > 0


def test_cluster_pipelined_speedup():
    """The acceptance gate: >= 1.5x aggregate goodput, idle reported."""
    sync = _run_cluster(False)
    piped = _run_cluster(True)
    assert piped.completed == sync.completed == 2 * REQUESTS
    ratio = piped.goodput_rps / sync.goodput_rps
    print()
    print(
        f"{'mode':>6} {'goodput_rps':>12} {'duration_s':>11} "
        f"{'idle_a':>7} {'idle_b':>7}"
    )
    for label, report, idle in (
        ("sync", sync, _RUNS[False][1]),
        ("piped", piped, _RUNS[True][1]),
    ):
        idles = list(idle.values())
        print(
            f"{label:>6} {report.goodput_rps:>12,.0f} "
            f"{report.duration_s:>11.3f} "
            f"{idles[0]:>7.2f} {idles[1]:>7.2f}"
        )
    print(f"pipelined/sync goodput ratio: {ratio:.2f}x")
    assert ratio >= SPEEDUP_FLOOR, (
        f"pipelined dispatch reached only {ratio:.2f}x the synchronous "
        f"pump ({piped.goodput_rps:,.0f} vs {sync.goodput_rps:,.0f} "
        f"rps); the gate is {SPEEDUP_FLOOR}x"
    )
    # Pipelining exists to keep replicas busy: the synchronous pump
    # must strand at least ~40% of paced device time (one tenant's
    # replicas idle while the other's pump blocks), the pipelined loop
    # must recover most of it.
    assert min(_RUNS[False][1].values()) >= 0.3
    assert max(_RUNS[True][1].values()) <= 0.25


def test_cluster_autoscaler_spans_and_reprogram_cost():
    """Autoscaler grow shows up as spans with measured reprogram cost.

    A saturating burst against a single replica (policy capacity
    pinned at the paced rate) forces one grow; in process mode that
    spawns and programs a fresh MLP-L replica, so the span's measured
    reprogram cost is real work, not bookkeeping.
    """
    telemetry.enable()
    try:
        tenant = _tenants()[0]
        tenant.autoscaler = AutoscalerPolicy(
            max_replicas=2,
            window_s=0.2,
            cooldown_s=10.0,
            service_rate_rps=CAPACITY_RPS,
        )
        cluster = ServingCluster([tenant], pipelined=True)
        with cluster:
            cluster.warmup()
            report = cluster.run(REQUESTS)
        scaled = report.tenants[0]
        grow = next(
            e for e in scaled.scale_events if e.direction == "grow"
        )
        assert grow.to_replicas == 2
        assert grow.reprogram_s > 0.0
        assert scaled.replicas_final == 2
        session = telemetry.session()
        spans = [
            s
            for s in session.tracer.spans
            if s.name == "serve.scale"
        ]
        assert spans and spans[0].attrs["direction"] == "grow"
        hist = session.metrics.histogram(
            "serve.scale.reprogram_ms",
            tenant=scaled.tenant,
            direction="grow",
        )
        assert hist.count >= 1
        assert hist.maximum == pytest.approx(
            grow.reprogram_s * 1e3, rel=1e-6
        )
        print()
        print(
            f"grow {grow.from_replicas}->{grow.to_replicas} cost "
            f"{grow.reprogram_s * 1e3:,.0f} ms at "
            f"{grow.rate_rps:,.0f} rps observed"
        )
    finally:
        telemetry.disable()


def test_cluster_saturation_p99_mlp_l(once):
    """Open-loop tail at 0.8x per-replica capacity stays bounded.

    At 80% utilisation an M/D-ish queue is stable: p99 must stay under
    a few batch service times rather than growing with the run length
    (queue blow-up shows up as p99 ~ duration).
    """
    rate = 0.8 * CAPACITY_RPS

    def run():
        cluster = ServingCluster(_tenants(rate), pipelined=True)
        with cluster:
            cluster.warmup()
            return cluster.run(REQUESTS).tenant("mlp-l-a")

    tenant = once(run)
    assert tenant.completed == REQUESTS
    assert tenant.shed == 0
    # Stable queue: the tail is a small multiple of the paced batch
    # service time, far below the ~0.6 s run duration.
    assert tenant.p99_ms < 6 * PACE_S * 1e3
    assert tenant.p50_ms < tenant.p99_ms <= tenant.p999_ms
    print()
    print(tenant.summary())
