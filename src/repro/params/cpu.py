"""Baseline CPU parameters (Table IV).

4 cores, 3 GHz, out-of-order; private 32 KB 4-way L1 (2-cycle access);
private 2 MB 8-way L2 (10-cycle access); ReRAM main memory behind a
533 MHz IO bus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GHz, KB, MB, pJ


@dataclass(frozen=True)
class CpuParams:
    """Analytical model parameters for the CPU-only baseline.

    The performance model is roofline-style: a layer is limited either
    by MAC throughput (``cores * macs_per_cycle * clock``) or by
    memory traffic over the off-chip bus.  ``compute_efficiency``
    captures the fraction of peak that general-purpose NN inference
    code (gathers, sigmoid evaluation, short inner loops) sustains —
    calibrated to the DianNao-era observation that special-purpose
    datapaths beat CPUs by two orders of magnitude.  ``power_w`` is
    the active package power attributed to the run; energy is
    ``power_w × busy time`` plus cache/DRAM traffic energy.
    """

    cores: int = 4
    clock_hz: float = 3.0 * GHz
    l1_bytes: int = 32 * KB
    l1_assoc: int = 4
    l1_access_cycles: int = 2
    l2_bytes: int = 2 * MB
    l2_assoc: int = 8
    l2_access_cycles: int = 10
    macs_per_cycle_per_core: int = 8
    compute_efficiency: float = 0.08
    power_w: float = 4.0
    e_l1_per_byte: float = 0.5 * pJ
    e_l2_per_byte: float = 2.0 * pJ

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError("cores must be >= 1")
        if self.clock_hz <= 0:
            raise ConfigurationError("clock must be positive")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ConfigurationError("compute_efficiency must be in (0, 1]")

    @property
    def peak_macs_per_s(self) -> float:
        """Peak multiply-accumulate throughput."""
        return self.cores * self.macs_per_cycle_per_core * self.clock_hz

    @property
    def sustained_macs_per_s(self) -> float:
        """Sustained MAC throughput after the efficiency derating."""
        return self.peak_macs_per_s * self.compute_efficiency


DEFAULT_CPU = CpuParams()
