"""Full-function (FF) mat compute parameters.

Section V-A: each FF mat is a 256×256 crossbar with eight 6-bit
reconfigurable sense amplifiers; cells hold 4-bit MLC weights in
computation mode and single-level bits in memory mode; input voltages
have 8 levels (3 bits) in computation mode and 2 levels in memory mode.
With the input-and-synapse composing scheme, inputs/outputs are 6-bit
dynamic fixed point and weights are 8-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.params.reram import ReRAMDeviceParams, PT_TIO2_DEVICE
from repro.units import ns, pJ


@dataclass(frozen=True)
class CrossbarParams:
    """Compute-mode configuration of one FF mat.

    Attributes
    ----------
    rows, cols:
        Crossbar dimensions (wordlines × bitlines).
    input_bits:
        Precision of one analog input step (Pin/2 in the composing
        scheme): the wordline drivers can produce ``2**input_bits``
        voltage levels.
    cell_bits:
        MLC bits per cell used as a synapse (Pw/2 under composing).
    output_bits:
        Full precision of the reconfigurable SA (Po).
    sense_amps:
        Number of reconfigurable SAs shared by the bitlines of a mat;
        a full 256-column readout is serialised over
        ``cols / sense_amps`` SA cycles.
    compose_inputs, compose_weights:
        Whether the input/synapse composing scheme is enabled
        (two 3-bit input phases; weight hi/lo parts in adjacent
        bitlines).
    t_mvm:
        Latency of one analog matrix-vector multiplication phase
        (drive wordlines + settle + sense one SA batch).
    t_sa:
        Latency of one sense-amplifier conversion at full precision.
    e_mvm_array:
        Energy dissipated in the array for one full-array MVM phase.
    e_driver_per_row:
        Energy of one multi-level wordline driver event.
    e_sa_conversion:
        Energy of one SA conversion at full output precision.
    e_sub_sigmoid:
        Energy of the analog subtraction + sigmoid unit per output.
    """

    rows: int = 256
    cols: int = 256
    input_bits: int = 3
    cell_bits: int = 4
    output_bits: int = 6
    sense_amps: int = 8
    compose_inputs: bool = True
    compose_weights: bool = True
    t_mvm: float = 10.0 * ns
    t_sa: float = 5.0 * ns
    e_mvm_array: float = 800.0 * pJ
    e_driver_per_row: float = 0.5 * pJ
    e_sa_conversion: float = 2.0 * pJ
    e_sub_sigmoid: float = 0.3 * pJ
    device: ReRAMDeviceParams = PT_TIO2_DEVICE
    #: Stuck-at fault rates sampled into a fresh ``FaultMap.random``
    #: per crossbar array (from the array's seeded rng) when no
    #: explicit map is supplied.  Zero (the default) disables
    #: injection; the ``PRIME_FAULT_RATES`` env knob fills in when both
    #: rates are zero.
    fault_rate_hrs: float = 0.0
    fault_rate_lrs: float = 0.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("crossbar dimensions must be positive")
        if (
            self.fault_rate_hrs < 0
            or self.fault_rate_lrs < 0
            or self.fault_rate_hrs + self.fault_rate_lrs > 1
        ):
            raise ConfigurationError(
                "fault rates must be non-negative and sum <= 1"
            )
        if self.sense_amps < 1 or self.cols % self.sense_amps != 0:
            raise ConfigurationError(
                "cols must be a positive multiple of sense_amps"
            )
        if self.input_bits < 1 or self.output_bits < 1:
            raise ConfigurationError("bit widths must be positive")
        if self.cell_bits != self.device.mlc_bits:
            raise ConfigurationError(
                "cell_bits must match the device MLC capability"
            )

    @property
    def input_levels(self) -> int:
        """Voltage levels the wordline drivers can generate."""
        return 1 << self.input_bits

    @property
    def effective_input_bits(self) -> int:
        """Input precision after composing (Pin)."""
        return self.input_bits * (2 if self.compose_inputs else 1)

    @property
    def effective_weight_bits(self) -> int:
        """Synaptic weight precision after composing (Pw)."""
        return self.cell_bits * (2 if self.compose_weights else 1)

    @property
    def weight_columns_per_synapse(self) -> int:
        """Physical bitlines consumed per logical synapse column.

        Composed weights store the high-bit and low-bit halves in
        adjacent bitlines of the same array.
        """
        return 2 if self.compose_weights else 1

    @property
    def logical_cols(self) -> int:
        """Logical synapse columns available per crossbar."""
        return self.cols // self.weight_columns_per_synapse

    @property
    def mvm_phases(self) -> int:
        """Sequential analog phases per composed MVM.

        The composing scheme evaluates the HH, HL, and LH partial
        products sequentially (the LL part falls entirely below the
        Po-bit output window and is skipped); an uncomposed MVM needs a
        single phase.
        """
        if self.compose_inputs and self.compose_weights:
            return 3
        if self.compose_inputs or self.compose_weights:
            return 2
        return 1

    @property
    def sa_batches(self) -> int:
        """SA readout batches needed to convert all columns once."""
        return self.cols // self.sense_amps

    @property
    def t_full_mvm(self) -> float:
        """Latency of a full composed MVM over one mat (seconds)."""
        per_phase = self.t_mvm + self.sa_batches * self.t_sa
        return self.mvm_phases * per_phase

    @property
    def e_full_mvm(self) -> float:
        """Energy of a full composed MVM over one mat (joules)."""
        return self.e_mvm_active(1.0, 1.0)

    def e_mvm_active(self, row_frac: float, col_frac: float) -> float:
        """Energy of one composed MVM with partial array activity.

        Sparse mappings drive only the occupied wordlines and sense
        only the occupied bitlines (the decoder gates idle lines), so
        driver energy scales with active rows, SA/subtraction energy
        with active columns, and the array's dot-product current with
        the active-cell fraction.
        """
        row_frac = min(max(row_frac, 0.0), 1.0)
        col_frac = min(max(col_frac, 0.0), 1.0)
        per_phase = (
            self.e_mvm_array * row_frac * col_frac
            + self.rows * row_frac * self.e_driver_per_row
            + self.cols * col_frac * self.e_sa_conversion
            + self.logical_cols * col_frac * self.e_sub_sigmoid
        )
        return self.mvm_phases * per_phase

    @property
    def macs_per_mvm(self) -> int:
        """Logical multiply-accumulates performed by one composed MVM."""
        return self.rows * self.logical_cols


#: Defaults matching the paper's practical technology assumptions.
DEFAULT_CROSSBAR = CrossbarParams()
