"""Per-figure experiment drivers.

Each ``figure*`` function regenerates the data behind one figure of the
paper's evaluation section and returns a structured result the
benchmark harness asserts against and prints.

========  ==========================================================
Figure 6  classification accuracy vs input/weight precision
Figure 8  speedup over CPU (pNPU-co, pNPU-pim-x1/x64, PRIME)
Figure 9  execution-time breakdown normalised to pNPU-co
Figure 10 energy saving over CPU
Figure 11 energy breakdown normalised to pNPU-co
Figure 12 area overhead
========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.baselines.common import ExecutionReport
from repro.baselines.cpu import CpuModel
from repro.baselines.npu import NpuCoProcessorModel, NpuPimModel
from repro.core.compiler import PrimeCompiler
from repro.core.executor import PrimeExecutor
from repro.errors import WorkloadError
from repro.eval.workloads import MLBENCH_ORDER, get_workload
from repro.params.area import AreaModel, DEFAULT_AREA_MODEL
from repro.params.prime import PrimeConfig, DEFAULT_PRIME_CONFIG
from repro.perf.parallel import parallel_map


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values.

    Raises :class:`WorkloadError` on empty input or non-positive /
    non-finite values instead of letting ``np.log`` emit warnings and
    propagate NaN through a figure.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise WorkloadError("geometric mean of an empty sequence")
    if np.any(~np.isfinite(arr)) or np.any(arr <= 0.0):
        raise WorkloadError(
            "geometric mean requires positive finite values, got "
            f"{arr.tolist()}"
        )
    return float(np.exp(np.mean(np.log(arr))))


@dataclass
class SystemComparison:
    """All systems' reports for every MlBench workload."""

    batch: int
    reports: dict[str, dict[str, ExecutionReport]] = field(
        default_factory=dict
    )

    def speedups_over_cpu(self, system: str) -> dict[str, float]:
        """Per-workload throughput speedup of ``system`` vs CPU."""
        return {
            wl: self.reports[wl][system].speedup_over(
                self.reports[wl]["CPU"]
            )
            for wl in self.reports
        }

    def energy_savings_over_cpu(self, system: str) -> dict[str, float]:
        """Per-workload energy-saving factor of ``system`` vs CPU."""
        return {
            wl: self.reports[wl][system].energy_saving_over(
                self.reports[wl]["CPU"]
            )
            for wl in self.reports
        }


def _workload_reports(
    name: str, batch: int, config: PrimeConfig
) -> tuple[str, dict[str, ExecutionReport]]:
    """All systems' reports for one workload (a picklable pool task)."""
    topology = get_workload(name).topology()
    plan = PrimeCompiler(config).compile(topology)
    return name, {
        "CPU": CpuModel().estimate(topology, batch),
        "pNPU-co": NpuCoProcessorModel().estimate(topology, batch),
        "pNPU-pim-x1": NpuPimModel(instances=1).estimate(topology, batch),
        "pNPU-pim-x64": NpuPimModel(instances=64).estimate(
            topology, batch
        ),
        "PRIME": PrimeExecutor(config).estimate(plan, batch),
    }


def run_all_systems(
    batch: int = 4096,
    config: PrimeConfig = DEFAULT_PRIME_CONFIG,
    workloads: tuple[str, ...] = MLBENCH_ORDER,
    workers: int | None = None,
) -> SystemComparison:
    """Evaluate every workload on every system (Figs. 8-11 substrate).

    ``batch`` is large by default: the paper assumes each configured NN
    "will be executed tens of thousands of times", so steady-state
    throughput (with bank-level parallelism) is the figure of merit.

    Workloads are independent analytical estimates, so they fan out
    over ``workers`` processes (default: ``PRIME_WORKERS``); the
    reports are deterministic either way.
    """
    comparison = SystemComparison(batch=batch)
    comparison.reports.update(
        parallel_map(
            partial(_workload_reports, batch=batch, config=config),
            tuple(workloads),
            workers=workers,
        )
    )
    return comparison


# ---------------------------------------------------------------------------
# Figure 8: performance speedups vs CPU
# ---------------------------------------------------------------------------


@dataclass
class Figure8Result:
    """Speedup series per system, plus geometric means."""

    batch: int
    speedups: dict[str, dict[str, float]]
    gmeans: dict[str, float]
    utilization: dict[str, tuple[float, float]]


def figure8(
    batch: int = 4096,
    config: PrimeConfig = DEFAULT_PRIME_CONFIG,
    workers: int | None = None,
) -> Figure8Result:
    """Speedups over the CPU-only baseline (Fig. 8)."""
    comparison = run_all_systems(batch=batch, config=config, workers=workers)
    systems = ("pNPU-co", "pNPU-pim-x1", "pNPU-pim-x64", "PRIME")
    speedups = {
        system: comparison.speedups_over_cpu(system) for system in systems
    }
    gmeans = {
        system: geometric_mean(list(values.values()))
        for system, values in speedups.items()
    }
    utilization = {}
    for wl in comparison.reports:
        extras = comparison.reports[wl]["PRIME"].extras
        utilization[wl] = (
            extras["utilization_before"],
            extras["utilization_after"],
        )
    return Figure8Result(
        batch=batch,
        speedups=speedups,
        gmeans=gmeans,
        utilization=utilization,
    )


# ---------------------------------------------------------------------------
# Figure 9: execution-time breakdown (vs pNPU-co)
# ---------------------------------------------------------------------------


@dataclass
class Figure9Result:
    """Per-workload, per-system time split normalised to pNPU-co."""

    #: workload -> system -> {"compute+buffer": x, "memory": y} where
    #: values are normalised to the pNPU-co total (co sums to 1).
    breakdown: dict[str, dict[str, dict[str, float]]]


def figure9(config: PrimeConfig = DEFAULT_PRIME_CONFIG) -> Figure9Result:
    """Execution-time breakdown with single NPUs and a single PRIME
    bank, no bank parallelism (as the paper's Fig. 9 does)."""
    cpu_batch = 64
    co = NpuCoProcessorModel()
    pim1 = NpuPimModel(instances=1)
    compiler = PrimeCompiler(config)
    executor = PrimeExecutor(config)
    breakdown: dict[str, dict[str, dict[str, float]]] = {}
    for name in MLBENCH_ORDER:
        topology = get_workload(name).topology()
        plan = compiler.compile(topology)
        reports = {
            "pNPU-co": co.estimate(topology, cpu_batch),
            "pNPU-pim": pim1.estimate(topology, cpu_batch),
            "PRIME": executor.estimate(
                plan, batch=cpu_batch, use_bank_parallelism=False
            ),
        }
        base = reports["pNPU-co"].latency_s
        breakdown[name] = {}
        for system, rep in reports.items():
            breakdown[name][system] = {
                "compute+buffer": (rep.compute_time_s + rep.buffer_time_s)
                / base,
                "memory": rep.memory_time_s / base,
            }
    return Figure9Result(breakdown=breakdown)


# ---------------------------------------------------------------------------
# Figure 10: energy savings vs CPU
# ---------------------------------------------------------------------------


@dataclass
class Figure10Result:
    """Energy-saving series per system, plus geometric means."""

    batch: int
    savings: dict[str, dict[str, float]]
    gmeans: dict[str, float]


def figure10(
    batch: int = 4096,
    config: PrimeConfig = DEFAULT_PRIME_CONFIG,
    workers: int | None = None,
) -> Figure10Result:
    """Energy savings over the CPU-only baseline (Fig. 10).

    pNPU-pim-x1 is omitted exactly as in the paper: its energy equals
    pNPU-pim-x64's (same work, same technology).
    """
    comparison = run_all_systems(batch=batch, config=config, workers=workers)
    systems = ("pNPU-co", "pNPU-pim-x64", "PRIME")
    savings = {
        system: comparison.energy_savings_over_cpu(system)
        for system in systems
    }
    gmeans = {
        system: geometric_mean(list(values.values()))
        for system, values in savings.items()
    }
    return Figure10Result(batch=batch, savings=savings, gmeans=gmeans)


# ---------------------------------------------------------------------------
# Figure 11: energy breakdown (vs pNPU-co)
# ---------------------------------------------------------------------------


@dataclass
class Figure11Result:
    """Energy split normalised to each workload's pNPU-co total."""

    breakdown: dict[str, dict[str, dict[str, float]]]

    def memory_energy_saving_pim(self) -> float:
        """Average fraction of pNPU-co's memory energy that pim saves."""
        fractions = []
        for per_system in self.breakdown.values():
            co_mem = per_system["pNPU-co"]["memory"]
            pim_mem = per_system["pNPU-pim-x64"]["memory"]
            if co_mem > 0:
                fractions.append(1.0 - pim_mem / co_mem)
        return float(np.mean(fractions))


def figure11(
    batch: int = 4096,
    config: PrimeConfig = DEFAULT_PRIME_CONFIG,
    workers: int | None = None,
) -> Figure11Result:
    """Energy breakdown into computation / buffer / memory (Fig. 11)."""
    comparison = run_all_systems(batch=batch, config=config, workers=workers)
    breakdown: dict[str, dict[str, dict[str, float]]] = {}
    for name in MLBENCH_ORDER:
        reports = comparison.reports[name]
        base = reports["pNPU-co"].energy_j
        breakdown[name] = {}
        for system in ("pNPU-co", "pNPU-pim-x64", "PRIME"):
            rep = reports[system]
            breakdown[name][system] = {
                "compute": rep.compute_energy_j / base,
                "buffer": rep.buffer_energy_j / base,
                "memory": rep.memory_energy_j / base,
            }
    return Figure11Result(breakdown=breakdown)


# ---------------------------------------------------------------------------
# Figure 12: area overhead
# ---------------------------------------------------------------------------


@dataclass
class Figure12Result:
    """Area-overhead numbers of Fig. 12 / §V-D."""

    chip_overhead: float
    ff_mat_overhead: float
    mat_breakdown: dict[str, float]


def figure12(area: AreaModel = DEFAULT_AREA_MODEL) -> Figure12Result:
    """Chip-level overhead and per-mat breakdown (Fig. 12)."""
    return Figure12Result(
        chip_overhead=area.chip_overhead(),
        ff_mat_overhead=area.ff_mat_overhead,
        mat_breakdown=area.mat_breakdown(),
    )
