"""Content-addressed on-disk artifact cache for the evaluation pipeline.

The expensive products of the eval stack — trained reference networks,
their held-out evaluation sets, and compiled mapping plans — are pure
functions of a small set of inputs.  This module persists them under a
key that hashes *all* of those inputs:

* the workload name and its topology signature,
* every training/compilation parameter (sample counts, epochs, seed,
  configuration repr),
* a fingerprint of the source modules that produce the artifact, so
  code changes invalidate entries automatically.

Layout: ``<root>/<kind>/<digest[:2]>/<digest>/`` holding the payload
files plus a ``meta.json`` completeness marker (written last; an entry
without it is ignored).  Writes go to a temp sibling directory and are
published with an atomic rename, so concurrent producers are safe.

Control knobs:

* ``PRIME_CACHE_DIR`` — cache root (default ``~/.cache/prime-repro``).
* ``PRIME_CACHE=0`` — start with the cache disabled.
* :func:`disable` / :func:`enable` — runtime switch.

Every lookup emits a ``perf.cache.hit`` or ``perf.cache.miss``
telemetry counter (labelled by artifact kind) when telemetry is on.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import shutil
import tempfile
from functools import lru_cache
from importlib import import_module
from pathlib import Path
from typing import Callable

import numpy as np

from repro import telemetry

logger = logging.getLogger("repro.perf")

#: Source modules whose content determines a trained reference network.
_TRAIN_MODULES = (
    "repro.eval.precision_study",
    "repro.eval.workloads",
    "repro.nn.datasets",
    "repro.nn.initializers",
    "repro.nn.layers",
    "repro.nn.losses",
    "repro.nn.network",
    "repro.nn.topology",
)

#: Source modules whose content determines a compiled mapping plan.
_PLAN_MODULES = (
    "repro.core.compiler",
    "repro.core.mapping",
    "repro.eval.workloads",
    "repro.params.crossbar",
    "repro.params.prime",
)

_ACTIVE = os.environ.get("PRIME_CACHE", "").strip().lower() not in (
    "0",
    "false",
    "off",
)


def enable() -> None:
    """Turn the cache on (the default unless ``PRIME_CACHE=0``)."""
    global _ACTIVE
    _ACTIVE = True


def disable() -> None:
    """Bypass the cache: every lookup misses, nothing is written."""
    global _ACTIVE
    _ACTIVE = False


def active() -> bool:
    """Whether the cache currently serves and stores entries."""
    return _ACTIVE


def cache_root() -> Path:
    """The cache root: ``PRIME_CACHE_DIR`` or ``~/.cache/prime-repro``."""
    env = os.environ.get("PRIME_CACHE_DIR", "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "prime-repro"


def stable_key(payload: dict) -> str:
    """Deterministic hex digest of a JSON-serialisable key payload."""
    blob = json.dumps(
        payload, sort_keys=True, default=repr, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@lru_cache(maxsize=None)
def code_fingerprint(*modules: str) -> str:
    """Digest of the given modules' source bytes.

    Included in every cache key so that editing any producing module
    invalidates its artifacts without manual version bumps.
    """
    h = hashlib.sha256()
    for name in modules:
        path = getattr(import_module(name), "__file__", None)
        if path:
            h.update(name.encode("utf-8"))
            h.update(Path(path).read_bytes())
    return h.hexdigest()[:16]


class ArtifactCache:
    """A content-addressed directory cache of evaluation artifacts."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else cache_root()

    def entry_dir(self, kind: str, key: dict) -> Path:
        """Directory an entry with this key lives in (may not exist)."""
        digest = stable_key(key)
        return self.root / kind / digest[:2] / digest

    def lookup(self, kind: str, key: dict) -> Path | None:
        """The entry directory on a hit, ``None`` on a miss.

        Only complete entries (``meta.json`` present) count as hits;
        a disabled cache always misses without recording counters.
        """
        if not _ACTIVE:
            return None
        entry = self.entry_dir(kind, key)
        if (entry / "meta.json").is_file():
            telemetry.count("perf.cache.hit", kind=kind)
            return entry
        telemetry.count("perf.cache.miss", kind=kind)
        return None

    def store(
        self, kind: str, key: dict, writer: Callable[[Path], None]
    ) -> Path | None:
        """Publish a new entry atomically; returns its directory.

        ``writer`` receives a private temp directory to fill; the
        ``meta.json`` marker is written last and the whole directory is
        renamed into place, replacing any stale entry.  Storage errors
        (read-only cache dir, disk full) are logged and swallowed — the
        computed artifact is still returned to the caller.
        """
        if not _ACTIVE:
            return None
        entry = self.entry_dir(kind, key)
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            tmp = Path(
                tempfile.mkdtemp(dir=entry.parent, prefix=".tmp-")
            )
            try:
                writer(tmp)
                (tmp / "meta.json").write_text(
                    json.dumps(key, indent=1, sort_keys=True, default=repr)
                )
                if entry.exists():
                    shutil.rmtree(entry)
                os.replace(tmp, entry)
            finally:
                if tmp.exists():
                    shutil.rmtree(tmp, ignore_errors=True)
        except OSError as exc:
            logger.warning("artifact cache store failed (%s): %s", kind, exc)
            return None
        telemetry.count("perf.cache.store", kind=kind)
        return entry

    def evict(self, kind: str, key: dict) -> None:
        """Drop one entry if present (used for corrupt payloads)."""
        entry = self.entry_dir(kind, key)
        if entry.exists():
            shutil.rmtree(entry, ignore_errors=True)


# ----------------------------------------------------------------------
# domain helpers
# ----------------------------------------------------------------------


def reference_network_key(
    workload: str,
    n_train: int,
    n_test: int,
    epochs: int,
    seed: int,
) -> dict:
    """The full cache key of one trained reference network.

    Exposed so tests can assert that changing any component moves the
    entry (i.e. forces a miss).
    """
    from repro.eval.workloads import get_workload

    wl = get_workload(workload)
    return {
        "kind": "reference_network",
        "workload": workload,
        "topology": wl.topology_text,
        "input_shape": list(wl.input_shape),
        "n_train": n_train,
        "n_test": n_test,
        "epochs": epochs,
        "seed": seed,
        "code": code_fingerprint(*_TRAIN_MODULES),
    }


def reference_network(
    workload: str = "CNN-1",
    n_train: int = 5000,
    n_test: int = 800,
    epochs: int = 10,
    seed: int = 7,
    cache: ArtifactCache | None = None,
):
    """Trained reference network + held-out set, served from the cache.

    Drop-in replacement for
    :func:`repro.eval.precision_study.train_reference_network`: a miss
    (or a disabled cache) trains exactly as before and persists the
    weights (via ``Sequential.save_npz``) and the evaluation split; a
    hit rebuilds the topology and reloads both in well under a second.
    """
    # Imported lazily: this module is a dependency of the eval stack.
    from repro.eval.precision_study import train_reference_network
    from repro.eval.workloads import get_workload

    cache = cache if cache is not None else ArtifactCache()
    key = reference_network_key(workload, n_train, n_test, epochs, seed)
    entry = cache.lookup("reference_network", key)
    if entry is not None:
        try:
            with telemetry.span(
                "perf.cache.load", kind="reference_network",
                workload=workload,
            ):
                with np.load(entry / "dataset.npz") as data:
                    x_test = data["x_test"]
                    y_test = data["y_test"]
                net = get_workload(workload).topology().build(
                    rng=np.random.default_rng(seed)
                )
                net.load_npz(entry / "weights.npz")
            return net, x_test, y_test
        except Exception as exc:  # corrupt entry: evict and retrain
            logger.warning(
                "evicting unreadable cache entry %s: %s", entry, exc
            )
            telemetry.count(
                "perf.cache.corrupt",
                kind="reference_network",
                error=type(exc).__name__,
            )
            cache.evict("reference_network", key)
    with telemetry.span(
        "perf.cache.train", kind="reference_network", workload=workload
    ):
        net, x_test, y_test = train_reference_network(
            workload,
            n_train=n_train,
            n_test=n_test,
            epochs=epochs,
            seed=seed,
        )

    def _write(target: Path) -> None:
        net.save_npz(target / "weights.npz")
        np.savez(target / "dataset.npz", x_test=x_test, y_test=y_test)

    cache.store("reference_network", key, _write)
    return net, x_test, y_test


def mapping_plan(
    workload: str,
    config=None,
    cache: ArtifactCache | None = None,
):
    """Compiled :class:`~repro.core.mapping.MappingPlan`, cached.

    The key covers the workload's topology signature, the full
    ``PrimeConfig`` repr (value-based: dataclasses all the way down),
    and the compiler source fingerprint.
    """
    from repro.core.compiler import PrimeCompiler
    from repro.eval.workloads import get_workload
    from repro.params.prime import DEFAULT_PRIME_CONFIG

    config = config if config is not None else DEFAULT_PRIME_CONFIG
    cache = cache if cache is not None else ArtifactCache()
    wl = get_workload(workload)
    key = {
        "kind": "mapping_plan",
        "workload": workload,
        "topology": wl.topology_text,
        "input_shape": list(wl.input_shape),
        "config": repr(config),
        "code": code_fingerprint(*_PLAN_MODULES),
    }
    entry = cache.lookup("mapping_plan", key)
    if entry is not None:
        try:
            with (entry / "plan.pkl").open("rb") as f:
                return pickle.load(f)
        except Exception as exc:
            logger.warning(
                "evicting unreadable cache entry %s: %s", entry, exc
            )
            telemetry.count(
                "perf.cache.corrupt",
                kind="mapping_plan",
                error=type(exc).__name__,
            )
            cache.evict("mapping_plan", key)
    plan = PrimeCompiler(config).compile(wl.topology())

    def _write(target: Path) -> None:
        with (target / "plan.pkl").open("wb") as f:
            pickle.dump(plan, f)

    cache.store("mapping_plan", key, _write)
    return plan
