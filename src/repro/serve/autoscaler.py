"""Reactive replica autoscaling for serving deployments.

PRIME's banks are a fixed pool of 64 NPUs shared by every resident
model; how many replica bank-groups each model *should* hold depends
on its offered load, which moves.  :class:`Autoscaler` closes that
loop reactively: it watches a sliding window of admitted arrival
rate, compares it against the deployment's per-replica service
capacity, and grows or shrinks the grant through
``ServingRuntime.scale_to`` — which reuses the one-time
``program_state`` path, so every scale-up pays (and the telemetry
records) the real crossbar-reprogramming cost the paper charges for
writing weights into ReRAM arrays.

Policy shape is deliberately simple (the classic queue-theoretic
reactive controller):

* **grow** when the windowed rate exceeds ``target_utilization`` of
  current capacity — straight to the replica count that brings
  utilization back under target (clamped to ``max_replicas`` and the
  free-bank pool);
* **shrink** one replica at a time, only when the rate would still
  leave the *smaller* grant below ``shrink_margin`` of its capacity
  (hysteresis — the grow and shrink thresholds never overlap, so the
  controller cannot oscillate on steady traffic);
* a ``cooldown_s`` gate between actions bounds reprogramming churn.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["AutoscalerPolicy", "ScaleEvent", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Knobs for the reactive controller."""

    min_replicas: int = 1
    max_replicas: int = 8
    #: Sliding window over which the arrival rate is estimated.
    window_s: float = 0.25
    #: Minimum gap between two scaling actions.
    cooldown_s: float = 0.5
    #: Minimum gap before a *grow* specifically; ``None`` inherits
    #: ``cooldown_s``.  Thread-dispatch tenants set this near zero:
    #: their scale-up allocates only scratch buffers on the shared
    #: programmed copy (microseconds, no crossbar reprogramming), so
    #: there is no churn cost to gate and growth can track load
    #: instantly.  Shrinks always keep the full ``cooldown_s``.
    grow_cooldown_s: float | None = None
    #: Grow when rate > target_utilization * capacity.
    target_utilization: float = 0.8
    #: Shrink only when rate < shrink_margin * capacity of the
    #: next-smaller grant (must stay below target_utilization).
    shrink_margin: float = 0.5
    #: Per-replica service capacity in requests/s.  ``None`` derives
    #: it from the scheduler's analytical throughput model; tests set
    #: it explicitly for full determinism.
    service_rate_rps: float | None = None

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ConfigurationError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ConfigurationError(
                "max_replicas must be >= min_replicas"
            )
        if self.window_s <= 0 or self.cooldown_s < 0:
            raise ConfigurationError("invalid window/cooldown")
        if self.grow_cooldown_s is not None and self.grow_cooldown_s < 0:
            raise ConfigurationError("grow_cooldown_s must be >= 0")
        if not 0 < self.target_utilization <= 1:
            raise ConfigurationError(
                "target_utilization must be in (0, 1]"
            )
        if not 0 <= self.shrink_margin < self.target_utilization:
            raise ConfigurationError(
                "shrink_margin must be in [0, target_utilization)"
            )


@dataclass(frozen=True)
class ScaleEvent:
    """One executed scaling action (for reports and assertions)."""

    t_s: float
    tenant: str
    from_replicas: int
    to_replicas: int
    #: Measured wall-clock cost of reprogramming the new replicas
    #: (0.0 for shrinks).
    reprogram_s: float
    rate_rps: float

    @property
    def direction(self) -> str:
        return "grow" if self.to_replicas > self.from_replicas else "shrink"


class Autoscaler:
    """Drives ``runtime.scale_to`` from observed arrival rate.

    Owned by the cluster loop: call :meth:`observe` once per admitted
    request and :meth:`step` once per loop iteration.  The free-bank
    feasibility clamp lives in the caller (the cluster knows the
    shared scheduler); this class only decides the *desired* count.
    """

    #: EMA smoothing for the observed replica-restart cost.
    RESTART_EMA_ALPHA = 0.5

    def __init__(
        self,
        runtime,
        policy: AutoscalerPolicy | None = None,
        clock=time.perf_counter,
    ) -> None:
        self.runtime = runtime
        self.policy = policy or AutoscalerPolicy()
        self.clock = clock
        self._arrivals: deque[float] = deque()
        self._last_action_s = -float("inf")
        self._last_restart_s = -float("inf")
        #: EMA of measured replica restart cost (wall seconds); the
        #: shrink-hysteresis horizon below.
        self._reprogram_ema_s = 0.0
        self.events: list[ScaleEvent] = []

    # -- fault-tolerance feedback ---------------------------------------

    def note_restart(
        self, cost_s: float, now: float | None = None
    ) -> None:
        """Record one replica restart and its measured reprogram cost.

        Fed by the cluster loop from ``ServingRuntime.restarts``.  A
        fleet that is actively crash-recovering should not also shrink:
        a shrink freed banks would likely be re-grown (another full
        ``program_state``) moments later, so :meth:`step` holds
        shrinks for ``cooldown_s`` plus the restart-cost EMA after the
        last restart.
        """
        now = self.clock() if now is None else now
        if self._reprogram_ema_s == 0.0:
            self._reprogram_ema_s = cost_s
        else:
            self._reprogram_ema_s += self.RESTART_EMA_ALPHA * (
                cost_s - self._reprogram_ema_s
            )
        self._last_restart_s = now

    # -- observation ----------------------------------------------------

    def observe(self, t_s: float | None = None) -> None:
        """Record one admitted arrival at time ``t_s``."""
        self._arrivals.append(self.clock() if t_s is None else t_s)

    def rate(self, now: float | None = None) -> float:
        """Admitted arrivals/s over the sliding window ending at now."""
        now = self.clock() if now is None else now
        cutoff = now - self.policy.window_s
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()
        return len(self._arrivals) / self.policy.window_s

    # -- control --------------------------------------------------------

    def capacity_per_replica(self) -> float:
        """Requests/s one replica sustains (policy override or model)."""
        if self.policy.service_rate_rps is not None:
            return self.policy.service_rate_rps
        # The scheduler's analytical throughput is for the whole grant;
        # normalise to one replica.
        scheduler = self.runtime.scheduler
        total = scheduler.throughput(self.runtime.name)
        return total / max(self.runtime.deployment.replicas, 1)

    def desired(self, rate_rps: float, current: int) -> int:
        """Replica count the policy wants for ``rate_rps``."""
        p = self.policy
        cap = self.capacity_per_replica()
        if cap <= 0:
            return current
        if rate_rps > p.target_utilization * cap * current:
            import math

            want = math.ceil(rate_rps / (p.target_utilization * cap))
            return min(max(want, current + 1), p.max_replicas)
        if current > p.min_replicas and rate_rps < (
            p.shrink_margin * cap * (current - 1)
        ):
            return current - 1
        return current

    def step(
        self, now: float | None = None, max_replicas: int | None = None
    ) -> ScaleEvent | None:
        """Evaluate the policy once; scale the runtime if it says so.

        ``max_replicas`` lets the caller clamp further (e.g. to what
        the shared free-bank pool can actually host right now).
        Returns the executed :class:`ScaleEvent`, or ``None``.
        """
        now = self.clock() if now is None else now
        since_action = now - self._last_action_s
        if since_action < min(
            self.policy.cooldown_s,
            (
                self.policy.cooldown_s
                if self.policy.grow_cooldown_s is None
                else self.policy.grow_cooldown_s
            ),
        ):
            return None
        current = self.runtime.replicas
        rate_rps = self.rate(now)
        want = self.desired(rate_rps, current)
        if max_replicas is not None:
            want = min(want, max(max_replicas, current))
        if want == current:
            return None
        # Direction-specific cooldown: grows may use the (shorter)
        # ``grow_cooldown_s`` — near-free on thread dispatch — while
        # shrinks always honour the full ``cooldown_s``.
        cooldown = self.policy.cooldown_s
        if want > current and self.policy.grow_cooldown_s is not None:
            cooldown = self.policy.grow_cooldown_s
        if since_action < cooldown:
            return None
        if want < current and now - self._last_restart_s < (
            self.policy.cooldown_s + self._reprogram_ema_s
        ):
            # Restart hysteresis: the fleet just paid a crash-recovery
            # reprogram; hold shrinks for a restart-cost-sized horizon
            # so freed banks are not re-programmed moments later.
            return None
        cost = self.runtime.scale_to(want)
        self._last_action_s = now
        event = ScaleEvent(
            t_s=now,
            tenant=self.runtime.name,
            from_replicas=current,
            to_replicas=want,
            reprogram_s=cost,
            rate_rps=rate_rps,
        )
        self.events.append(event)
        return event
