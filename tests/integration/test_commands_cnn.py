"""Command-stream execution of a convolutional network."""

import numpy as np
import pytest

from repro.core.api import PrimeSession
from repro.core.commands import CommandStreamRunner


@pytest.fixture(scope="module")
def cnn_session(trained_tiny_cnn):
    topology, net, x_test, y_test = trained_tiny_cnn
    session = PrimeSession(seed=21)
    session.map_topology(topology)
    session.program_weight(net)
    session.config_datapath()
    return session, x_test, y_test


class TestCnnCommandStream:
    def test_conv_sample_matches_fast_path(self, cnn_session):
        session, x_test, _ = cnn_session
        runner = CommandStreamRunner(session)
        agree = 0
        for i in range(6):
            logits = runner.run_sample(x_test[i])
            fast = session.run(x_test[i : i + 1])[0]
            agree += int(np.argmax(logits) == np.argmax(fast))
        assert agree >= 5

    def test_conv_load_moves_im2col_codes(self, cnn_session):
        session, x_test, _ = cnn_session
        runner = CommandStreamRunner(session)
        before = len(runner.command_log)
        runner.run_sample(x_test[0])
        trace = runner.command_log[before:]
        loads = [t for t in trace if t.startswith("load")]
        # conv layer loads the full im2col expansion: 26*26 patches x
        # (3*3*1 + bias) codes
        conv_load = loads[0]
        size = int(conv_load.rpartition("x")[2])
        assert size == 26 * 26 * 10

    def test_pooling_happens_between_commands(self, cnn_session):
        session, x_test, y_test = cnn_session
        runner = CommandStreamRunner(session)
        logits = runner.run_sample(x_test[1])
        assert logits.shape == (10,)
        assert np.isfinite(logits).all()
