"""Closed-loop load generator and latency metering."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import telemetry
from repro.errors import ConfigurationError
from repro.nn.topology import parse_topology
from repro.params.crossbar import CrossbarParams
from repro.params.memory import MemoryOrganization
from repro.params.prime import PrimeConfig
from repro.params.reram import PT_TIO2_DEVICE
from repro.resilience import ResiliencePolicy
from repro.serve import LoadGenerator, LoadReport, ServeConfig, ServingRuntime

pytestmark = pytest.mark.serve

NOISE_FREE = dataclasses.replace(
    PT_TIO2_DEVICE, programming_sigma=0.0, read_noise_sigma=0.0
)
SMALL_ORG = MemoryOrganization(
    subarrays_per_bank=8,
    mats_per_subarray=16,
    mat_rows=32,
    mat_cols=32,
)
TOPOLOGY = parse_topology("serve-load", "24-20-6")
CONFIG = PrimeConfig(
    crossbar=CrossbarParams(rows=32, cols=32, sense_amps=8, device=NOISE_FREE),
    organization=SMALL_ORG,
    resilience=ResiliencePolicy(),
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    yield
    telemetry.disable()


@pytest.fixture
def runtime():
    network = TOPOLOGY.build(rng=np.random.default_rng(2))
    samples = np.random.default_rng(3).standard_normal((32, 24))
    runtime = ServingRuntime(
        network,
        TOPOLOGY,
        config=CONFIG,
        serve_config=ServeConfig(mode="serial", max_batch=8),
        calibration=samples,
        max_replicas=2,
    )
    yield runtime, samples
    runtime.close()


class TestLoadGenerator:
    def test_knob_validation(self, runtime):
        rt, samples = runtime
        with pytest.raises(ConfigurationError):
            LoadGenerator(rt, samples[:0])
        with pytest.raises(ConfigurationError):
            LoadGenerator(rt, samples, concurrency=0)
        with pytest.raises(ConfigurationError):
            LoadGenerator(rt, samples).run(0)

    def test_default_concurrency_fills_every_replica(self, runtime):
        rt, samples = runtime
        generator = LoadGenerator(rt, samples)
        assert generator.concurrency == rt.max_batch * rt.replicas

    def test_closed_loop_report(self, runtime):
        telemetry.enable()
        rt, samples = runtime
        generator = LoadGenerator(rt, samples)
        generator.warmup()
        report = generator.run(40)
        assert isinstance(report, LoadReport)
        assert report.requests == 40
        assert report.workload == rt.name
        assert report.duration_s > 0
        assert report.throughput_rps > 0
        assert 0 < report.p50_ms <= report.p95_ms <= report.p99_ms
        assert report.mean_ms > 0
        assert report.batches >= 1
        assert report.mean_batch == pytest.approx(40 / report.batches)
        assert report.replicas == rt.replicas
        assert report.mode == "serial"
        assert report.analytical_rps == pytest.approx(
            rt.analytical_throughput()
        )
        assert report.model_ratio > 0
        # Every request's latency also landed in the telemetry
        # histogram (warmup batches included — one per replica), and
        # the throughput gauges were published.
        hist = telemetry.session().metrics.histogram(
            "serve.latency_ms", tenant=rt.tenant
        )
        assert hist.count == 40 + rt.max_batch * rt.replicas
        assert (
            telemetry.percentile("serve.latency_ms", 99.0, tenant=rt.tenant)
            > 0
        )
        assert (
            telemetry.gauge_value(
                "serve.throughput_rps", tenant=report.tenant
            )
            == pytest.approx(report.throughput_rps)
        )
        assert report.tenant == rt.tenant

    def test_summary_is_human_readable(self, runtime):
        rt, samples = runtime
        report = LoadGenerator(rt, samples).run(10)
        text = report.summary()
        assert rt.name in text
        assert "req/s" in text
        assert "p99" in text

    def test_sample_replay_wraps_around(self, runtime):
        rt, samples = runtime
        generator = LoadGenerator(rt, samples[:3])
        report = generator.run(10)
        assert report.requests == 10
