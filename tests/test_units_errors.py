"""Tests for the unit helpers and the exception hierarchy."""

import pytest

import repro
from repro import errors
from repro.units import (
    GB,
    GHz,
    KB,
    MB,
    gops,
    ns,
    pJ,
    to_ns,
    to_pj,
    us,
)


class TestUnits:
    def test_time_scale(self):
        assert 1000 * ns == pytest.approx(1 * us)

    def test_round_trips(self):
        assert to_ns(22.5 * ns) == pytest.approx(22.5)
        assert to_pj(8.9e-9) == pytest.approx(8900.0)

    def test_data_sizes_are_powers_of_two(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_gops(self):
        assert gops(2e9, 1.0) == pytest.approx(2.0)
        assert gops(1e9, 0.5) == pytest.approx(2.0)

    def test_gops_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            gops(1e9, 0.0)

    def test_frequency(self):
        assert 3 * GHz == pytest.approx(3e9)

    def test_energy(self):
        assert 1000 * pJ == pytest.approx(1e-9)


class TestErrorHierarchy:
    ALL = [
        errors.ConfigurationError,
        errors.DeviceError,
        errors.CrossbarError,
        errors.PrecisionError,
        errors.MemoryError_,
        errors.ControllerError,
        errors.MappingError,
        errors.ExecutionError,
        errors.WorkloadError,
    ]

    @pytest.mark.parametrize("exc", ALL)
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_single_except_clause_catches_everything(self):
        for exc in self.ALL:
            try:
                raise exc("boom")
            except errors.ReproError as caught:
                assert str(caught) == "boom"

    def test_memory_error_does_not_shadow_builtin(self):
        assert errors.MemoryError_ is not MemoryError
        assert not issubclass(errors.MemoryError_, MemoryError)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points_exposed(self):
        assert callable(repro.PrimeSession)
        assert callable(repro.parse_topology)
        assert "MLP-S" in repro.MLBENCH
