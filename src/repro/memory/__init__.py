"""ReRAM main-memory hierarchy and the PRIME controller.

Mirrors Figure 3(c)/Figure 4-left:

* :mod:`repro.memory.metering` — time/energy cost accounting shared by
  the memory system and the executors.
* :mod:`repro.memory.mat` — one morphable 256×256 mat.
* :mod:`repro.memory.subarray` — Mem, Buffer, and FF subarrays.
* :mod:`repro.memory.bank` — a bank: 61 Mem + 2 FF + 1 Buffer
  subarrays, global row buffer, global data lines.
* :mod:`repro.memory.main_memory` — the 8-chip × 8-bank system.
* :mod:`repro.memory.controller` — the PRIME controller and its
  Table I command set.
* :mod:`repro.memory.os_support` — page-miss-rate tracking and the
  runtime FF-subarray reserve/release policy (§IV-C).
"""

from repro.memory.metering import CostMeter, CostCategory
from repro.memory.mat import Mat, MatMode
from repro.memory.subarray import (
    MemSubarray,
    BufferSubarray,
    FFSubarray,
    SubarrayRole,
    FFSubarrayState,
)
from repro.memory.bank import Bank
from repro.memory.main_memory import MainMemory
from repro.memory.controller import (
    PrimeController,
    Command,
    DatapathCommand,
    DataFlowCommand,
)
from repro.memory.os_support import PageMissTracker, FFAllocator

__all__ = [
    "CostMeter",
    "CostCategory",
    "Mat",
    "MatMode",
    "MemSubarray",
    "BufferSubarray",
    "FFSubarray",
    "SubarrayRole",
    "FFSubarrayState",
    "Bank",
    "MainMemory",
    "PrimeController",
    "Command",
    "DatapathCommand",
    "DataFlowCommand",
    "PageMissTracker",
    "FFAllocator",
]
