"""Area-overhead model (Figure 12 and Section V-D).

PRIME adds circuitry to the FF mats only.  Relative to an unmodified
memory mat, an FF mat grows by 60%: the multi-level wordline drivers
contribute 23 points, the subtraction + sigmoid circuitry 29 points,
and the control/multiplexer/miscellaneous logic 8 points.  With two FF
subarrays and one Buffer subarray per bank the paper reports a chip-
level overhead of 5.76%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.params.memory import MemoryOrganization, DEFAULT_ORGANIZATION


@dataclass(frozen=True)
class AreaModel:
    """Per-mat and chip-level area overheads of PRIME.

    The three per-mat overhead fractions are expressed relative to the
    area of one unmodified memory mat (0.23 means "+23% of a mat").
    ``fixed_bank_overhead`` covers the additions that are not per-mat:
    the FF↔Buffer connection unit (decoders + multiplexers + private
    data port wiring spanning three subarrays), the PRIME controller,
    and the widened mode multiplexing on the global datapath.  Its
    default is calibrated so the chip-level total reproduces the
    paper's NVSim-derived 5.76%.
    """

    driver_overhead: float = 0.23
    subtract_sigmoid_overhead: float = 0.29
    control_mux_overhead: float = 0.08
    fixed_bank_overhead: float = 0.0389
    organization: MemoryOrganization = DEFAULT_ORGANIZATION

    def __post_init__(self) -> None:
        for name in (
            "driver_overhead",
            "subtract_sigmoid_overhead",
            "control_mux_overhead",
            "fixed_bank_overhead",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    @property
    def ff_mat_overhead(self) -> float:
        """Total area increase of one FF mat vs a memory mat (~0.60)."""
        return (
            self.driver_overhead
            + self.subtract_sigmoid_overhead
            + self.control_mux_overhead
        )

    def mat_breakdown(self) -> dict[str, float]:
        """Fig. 12 pie: share of the *added* FF-mat area per component."""
        total = self.ff_mat_overhead
        return {
            "driver": self.driver_overhead / total,
            "subtraction+sigmoid": self.subtract_sigmoid_overhead / total,
            "control/mux/etc": self.control_mux_overhead / total,
        }

    def chip_overhead(self) -> float:
        """Chip-level area overhead of enabling PRIME (~5.76%)."""
        org = self.organization
        mats_per_bank = org.subarrays_per_bank * org.mats_per_subarray
        ff_fraction = org.ff_mats_per_bank / mats_per_bank
        return ff_fraction * self.ff_mat_overhead + self.fixed_bank_overhead


DEFAULT_AREA_MODEL = AreaModel()
