"""The DianNao-style parallel NPU baselines (Table V).

:class:`NpuCoProcessorModel` attaches the NPU to the off-chip memory
bus (pNPU-co); :class:`NpuPimModel` 3D-stacks it on the memory
(pNPU-pim) where it sees the wide internal bandwidth and cheap
accesses, optionally with one NPU per bank (×64).

Datapath model: the 16×16 multiplier array retires 256 MACs/cycle at
1 GHz.  The 32 KB weight buffer (SB) caches small layers' weights for
the whole batch; larger weight sets are re-streamed, amortised over a
small ``weight_reuse_batch`` of samples (NBout can hold partial sums
for ~1K outputs, enabling batch-tiled weight reuse).  Input/output
activations of every layer move through memory — the 2 KB NBin/NBout
cannot hold inter-layer data, which is exactly the data-movement tax
PRIME's in-memory placement removes.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.baselines.common import (
    ExecutionReport,
    LayerTraffic,
    record_report,
    workload_traffic,
)
from repro.nn.topology import NetworkTopology
from repro.params.npu import NpuParams, PNPU_CO, PNPU_PIM

#: Bytes per element of the NPU's 16-bit fixed-point datapath.
NPU_ELEM_BYTES = 2

#: Samples over which streamed weights are amortised (batch tiling
#: bounded by NBout partial-sum capacity).
WEIGHT_REUSE_BATCH = 8

#: Buffer bytes moved per MAC (NBin broadcast + SB weight stream +
#: NBout accumulate, per the 16×16 tile dataflow).
BUFFER_BYTES_PER_MAC = 2.25


class NpuCoProcessorModel:
    """pNPU-co: the NPU as a co-processor on the memory bus."""

    system_name = "pNPU-co"

    def __init__(self, params: NpuParams = PNPU_CO) -> None:
        self.params = params

    def estimate(
        self, topology: NetworkTopology, batch: int = 64
    ) -> ExecutionReport:
        """Latency/energy of ``batch`` samples on one NPU."""
        if batch < 1:
            raise WorkloadError("batch must be >= 1")
        layers = workload_traffic(topology)
        compute_s = 0.0
        buffer_bytes = 0.0
        memory_bytes = 0.0
        for t in layers:
            compute_s += t.macs / self.params.peak_macs_per_s
            buffer_bytes += BUFFER_BYTES_PER_MAC * t.macs
            memory_bytes += self._layer_memory_bytes(t, batch)
        memory_s = memory_bytes / self.params.memory_bandwidth
        compute_s *= batch
        memory_s *= batch
        buffer_bytes *= batch
        memory_bytes *= batch
        per_sample_latency = (compute_s + memory_s) / batch
        latency = self._batch_latency(per_sample_latency, batch)
        report = ExecutionReport(
            system=self.system_name,
            workload=topology.name,
            batch=batch,
            latency_s=latency,
            compute_time_s=compute_s * latency / (compute_s + memory_s),
            memory_time_s=memory_s * latency / (compute_s + memory_s),
            compute_energy_j=self.params.e_mac
            * sum(t.macs for t in layers)
            * batch,
            buffer_energy_j=buffer_bytes * self.params.e_buffer_per_byte,
            memory_energy_j=memory_bytes * self.params.e_memory_per_byte,
            extras={"memory_bytes": memory_bytes},
        )
        record_report(report)
        return report

    def _batch_latency(self, per_sample: float, batch: int) -> float:
        return per_sample * batch

    def _layer_memory_bytes(self, t: LayerTraffic, batch: int) -> float:
        """Average per-sample memory traffic of one layer."""
        weight_bytes = t.weight_elems * NPU_ELEM_BYTES
        if weight_bytes <= self.params.weight_buffer_bytes:
            weight_traffic = weight_bytes / batch  # resident for the batch
        else:
            weight_traffic = weight_bytes / WEIGHT_REUSE_BATCH
        activation_traffic = (
            t.input_elems + t.output_elems
        ) * NPU_ELEM_BYTES
        return weight_traffic + activation_traffic


class NpuPimModel(NpuCoProcessorModel):
    """pNPU-pim: the NPU 3D-stacked on memory, ×1 or ×64 instances."""

    def __init__(
        self, params: NpuParams = PNPU_PIM, instances: int = 1
    ) -> None:
        if instances < 1:
            raise WorkloadError("instances must be >= 1")
        if not params.stacked:
            raise WorkloadError("NpuPimModel requires a stacked NpuParams")
        super().__init__(params)
        self.instances = instances

    @property
    def system_name(self) -> str:  # type: ignore[override]
        return f"pNPU-pim-x{self.instances}"

    def _batch_latency(self, per_sample: float, batch: int) -> float:
        waves = -(-batch // self.instances)
        return per_sample * waves
