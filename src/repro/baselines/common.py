"""Shared report format and per-layer traffic model for all systems.

Every system model (CPU, pNPU-co, pNPU-pim, PRIME) returns an
:class:`ExecutionReport`; the experiment drivers compare reports to
build the paper's figures.  :func:`workload_traffic` reduces a
:class:`~repro.nn.topology.NetworkTopology` to the per-layer operation
and byte counts every analytical model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.errors import WorkloadError
from repro.nn.topology import ConvSpec, DenseSpec, NetworkTopology, PoolSpec


@dataclass(frozen=True)
class LayerTraffic:
    """Operation and data-movement counts of one layer, per sample.

    Byte counts are *element* counts; models multiply by their own
    datapath width (2 B for the NPU's 16-bit fixed point, 4 B for the
    CPU's floats, 1 B for PRIME's 6-bit dynamic fixed point).
    """

    name: str
    macs: int
    input_elems: int
    output_elems: int
    weight_elems: int
    #: Times the weight matrix is applied per sample (conv pixels).
    reuse: int
    is_conv: bool
    is_pool: bool
    #: Crossbar matrix dimensions when mapped onto PRIME.
    matrix_rows: int
    matrix_cols: int


def workload_traffic(topology: NetworkTopology) -> list[LayerTraffic]:
    """Per-layer traffic for one sample of ``topology``."""
    layers: list[LayerTraffic] = []
    for i, info in enumerate(topology.layers):
        spec = info.spec
        in_elems = int(np.prod(info.input_shape))
        out_elems = int(np.prod(info.output_shape))
        if isinstance(spec, ConvSpec):
            rows = spec.kernel * spec.kernel * info.input_shape[2]
            cols = spec.maps
            reuse = info.output_shape[0] * info.output_shape[1]
            layers.append(
                LayerTraffic(
                    name=f"L{i}-conv{spec.kernel}x{spec.maps}",
                    macs=info.macs,
                    input_elems=in_elems,
                    output_elems=out_elems,
                    weight_elems=info.synapses,
                    reuse=reuse,
                    is_conv=True,
                    is_pool=False,
                    matrix_rows=rows,
                    matrix_cols=cols,
                )
            )
        elif isinstance(spec, PoolSpec):
            layers.append(
                LayerTraffic(
                    name=f"L{i}-pool{spec.size}",
                    macs=info.macs,
                    input_elems=in_elems,
                    output_elems=out_elems,
                    weight_elems=0,
                    reuse=out_elems // info.input_shape[2] if info.input_shape[2] else 1,
                    is_conv=False,
                    is_pool=True,
                    matrix_rows=spec.size * spec.size,
                    matrix_cols=1,
                )
            )
        elif isinstance(spec, DenseSpec):
            layers.append(
                LayerTraffic(
                    name=f"L{i}-fc{spec.units}",
                    macs=info.macs,
                    input_elems=in_elems,
                    output_elems=out_elems,
                    weight_elems=info.synapses,
                    reuse=1,
                    is_conv=False,
                    is_pool=False,
                    matrix_rows=in_elems,
                    matrix_cols=spec.units,
                )
            )
        else:
            raise WorkloadError(f"unhandled spec {spec!r}")
    return layers


@dataclass
class ExecutionReport:
    """Latency/energy result of running a workload on one system.

    Attributes
    ----------
    system, workload:
        Labels for reporting.
    batch:
        Samples processed; latency covers the whole batch.
    latency_s:
        End-to-end batch latency (critical path).
    compute_time_s, buffer_time_s, memory_time_s:
        Non-overlapped time per category (Fig. 9's split).
    compute_energy_j, buffer_energy_j, memory_energy_j:
        Energy per category (Fig. 11's split).
    """

    system: str
    workload: str
    batch: int
    latency_s: float
    compute_time_s: float = 0.0
    buffer_time_s: float = 0.0
    memory_time_s: float = 0.0
    compute_energy_j: float = 0.0
    buffer_energy_j: float = 0.0
    memory_energy_j: float = 0.0
    extras: dict = field(default_factory=dict)

    @property
    def energy_j(self) -> float:
        """Total energy of the batch."""
        return (
            self.compute_energy_j
            + self.buffer_energy_j
            + self.memory_energy_j
        )

    @property
    def latency_per_sample(self) -> float:
        """Average per-sample latency."""
        return self.latency_s / self.batch

    @property
    def energy_per_sample(self) -> float:
        """Average per-sample energy."""
        return self.energy_j / self.batch

    def speedup_over(self, other: "ExecutionReport") -> float:
        """Throughput speedup of this system vs ``other``."""
        if self.latency_per_sample <= 0:
            raise WorkloadError("non-positive latency")
        return other.latency_per_sample / self.latency_per_sample

    def energy_saving_over(self, other: "ExecutionReport") -> float:
        """Energy-efficiency factor of this system vs ``other``."""
        if self.energy_per_sample <= 0:
            raise WorkloadError("non-positive energy")
        return other.energy_per_sample / self.energy_per_sample

    def time_breakdown(self) -> dict[str, float]:
        """Fractions of the latency per category (Fig. 9)."""
        total = self.compute_time_s + self.buffer_time_s + self.memory_time_s
        if total <= 0:
            return {"compute": 0.0, "buffer": 0.0, "memory": 0.0}
        return {
            "compute": self.compute_time_s / total,
            "buffer": self.buffer_time_s / total,
            "memory": self.memory_time_s / total,
        }

    def energy_breakdown(self) -> dict[str, float]:
        """Fractions of the energy per category (Fig. 11)."""
        total = self.energy_j
        if total <= 0:
            return {"compute": 0.0, "buffer": 0.0, "memory": 0.0}
        return {
            "compute": self.compute_energy_j / total,
            "buffer": self.buffer_energy_j / total,
            "memory": self.memory_energy_j / total,
        }


def record_report(report: ExecutionReport) -> None:
    """Emit the shared ``model.*`` telemetry counters for one report.

    Every system model (CPU, pNPU-co, pNPU-pim, PRIME) funnels its
    estimates through here so baseline comparisons accumulate under
    identical metric names, labelled by ``system`` and ``workload``.
    """
    if not telemetry.enabled():
        return
    labels = {"system": report.system, "workload": report.workload}
    telemetry.count("model.estimates", 1, **labels)
    telemetry.count("model.samples", report.batch, **labels)
    telemetry.count("model.latency_ns", report.latency_s * 1e9, **labels)
    for stage, time_s, energy_j in (
        ("compute", report.compute_time_s, report.compute_energy_j),
        ("buffer", report.buffer_time_s, report.buffer_energy_j),
        ("memory", report.memory_time_s, report.memory_energy_j),
    ):
        telemetry.count(
            "model.time_ns", time_s * 1e9, stage=stage, **labels
        )
        telemetry.count(
            "model.energy_nj", energy_j * 1e9, stage=stage, **labels
        )
