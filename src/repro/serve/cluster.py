"""Pipelined multi-model serving over one shared bank pool.

PRIME's end state is a *datacenter* memory system: 64 ReRAM banks
hosting several resident NNs at once, each bank group an independent
NPU.  :class:`ServingCluster` operationalises that — several
:class:`~repro.serve.runtime.ServingRuntime` deployments run
concurrently over disjoint :class:`~repro.core.scheduler.BankScheduler`
grants, driven by *open-loop* arrival processes
(:mod:`repro.serve.arrivals`), guarded by per-tenant admission control,
and resized live by reactive autoscalers
(:mod:`repro.serve.autoscaler`).

The cluster loop is where the pipelining lives.  The single-model path
pumps synchronously: dispatch every ready batch, then **wait for all
of them** — so while the slowest replica finishes, every other replica
of every tenant idles and no new batch forms.  The pipelined loop
instead interleaves non-blocking :meth:`ServingRuntime.poll` calls
across tenants: each poll tops up dispatches to the dispatcher's
shared-memory slot depth and harvests only the *finished* prefix of
the in-flight queue.  Batch formation for tenant A overlaps execution
for tenant B (and for A's own other replicas), keeping every granted
bank busy.  ``pipelined=False`` degrades the same loop to the
synchronous pump — the benchmark baseline.

Determinism: arrivals are a pure function of each tenant's seed,
admission decisions depend only on queue state at the decision
instant, and results are bit-identical to
:meth:`ServingRuntime.reference` per tenant (noise off) regardless of
how batches interleaved.  Tests inject a fake clock + sleep to make
the whole loop a deterministic function of its inputs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.core.scheduler import BankScheduler
from repro.errors import ConfigurationError
from repro.nn.network import Sequential
from repro.nn.topology import NetworkTopology
from repro.params.prime import PrimeConfig, DEFAULT_PRIME_CONFIG
from repro.serve.arrivals import ArrivalProcess, TrafficShape
from repro.serve.autoscaler import (
    Autoscaler,
    AutoscalerPolicy,
    ScaleEvent,
)
from repro.serve.batcher import ServeRequest
from repro.serve.health import FaultPlan, HealthPolicy
from repro.serve.runtime import ServeConfig, ServingRuntime
from repro.telemetry.metrics import nearest_rank

__all__ = [
    "AdmissionPolicy",
    "TenantSpec",
    "TenantReport",
    "ClusterReport",
    "ServingCluster",
]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Per-tenant admission gate for open-loop traffic.

    Under open-loop load a saturated tenant's queue grows without
    bound; shedding early keeps the *admitted* requests' latency
    bounded and is counted per tenant so the saturation reports show
    goodput and shed rate side by side.

    * ``max_queue_depth`` — an arriving request finding this many
      requests already queued is rejected at the door
      (``serve.shed{reason=queue_depth}``);
    * ``deadline_s`` — a queued request older than this is dropped
      before batch formation (``serve.shed{reason=deadline}``); it
      could only waste a replica on an answer nobody is waiting for.
    """

    max_queue_depth: int | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ConfigurationError("max_queue_depth must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError("deadline_s must be > 0")


@dataclass
class TenantSpec:
    """One co-resident model plus the traffic aimed at it."""

    topology: NetworkTopology
    network: Sequential
    #: Samples the arrival process replays (cycled round-robin).
    samples: np.ndarray
    #: Open-loop base arrival rate.
    rate_rps: float = 100.0
    shape: TrafficShape | None = None
    #: Arrival-process seed (determinism knob).
    seed: int = 0
    #: Initial replica grant.
    replicas: int = 1
    serve_config: ServeConfig | None = None
    admission: AdmissionPolicy | None = None
    autoscaler: AutoscalerPolicy | None = None
    calibration: np.ndarray | None = None
    #: Fault-tolerance policy (``None`` = runtime defaults: crash
    #: recovery on, probes off).
    health: HealthPolicy | None = None
    #: Seeded chaos schedule for this tenant's runtime (tests only).
    fault_plan: FaultPlan | None = None


@dataclass(frozen=True)
class TenantReport:
    """One tenant's outcome of an open-loop cluster run."""

    tenant: str
    #: Arrival-process draws aimed at this tenant.
    offered: int
    #: Requests past the admission gate (submitted to the batcher).
    admitted: int
    shed_queue: int
    shed_deadline: int
    completed: int
    duration_s: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    mean_ms: float
    replicas_final: int
    mode: str
    #: Fraction of replica-time the grant spent idle: 1 minus the
    #: worker-measured execute time over integrated replica-seconds.
    replica_idle_fraction: float
    #: Admitted requests whose micro-batch exhausted its dispatch
    #: retries (shed with ``request.error`` set — a recorded loss,
    #: never a silent one).
    shed_failed: int = 0
    #: Replica restarts executed during the run (crash recovery).
    replica_restarts: int = 0
    #: Drift-triggered background reprogrammings during the run.
    reprograms: int = 0
    scale_events: tuple[ScaleEvent, ...] = ()
    #: Completed requests, in admission order (for bit-identity
    #: checks against ``ServingRuntime.reference``).
    requests: tuple[ServeRequest, ...] = field(default=(), repr=False)

    @property
    def shed(self) -> int:
        return self.shed_queue + self.shed_deadline + self.shed_failed

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def goodput_rps(self) -> float:
        """Completed (admitted *and* answered) requests per second."""
        return self.completed / self.duration_s if self.duration_s else 0.0

    def summary(self) -> str:
        scale = "".join(
            f" {e.direction}->{e.to_replicas}" for e in self.scale_events
        )
        faults = ""
        if self.replica_restarts or self.reprograms or self.shed_failed:
            faults = (
                f", {self.replica_restarts} restart(s) "
                f"{self.reprograms} reprogram(s) "
                f"{self.shed_failed} failed"
            )
        return (
            f"{self.tenant}: offered {self.offered}, goodput "
            f"{self.goodput_rps:,.0f} req/s, shed {self.shed_rate:.1%} "
            f"(queue {self.shed_queue}, deadline {self.shed_deadline}), "
            f"p99={self.p99_ms:.2f} ms p99.9={self.p999_ms:.2f} ms, "
            f"idle {self.replica_idle_fraction:.1%} over "
            f"{self.replicas_final} replica(s){scale}{faults}"
        )


@dataclass(frozen=True)
class ClusterReport:
    """Aggregate outcome of one open-loop cluster run."""

    tenants: tuple[TenantReport, ...]
    duration_s: float
    pipelined: bool

    @property
    def goodput_rps(self) -> float:
        return sum(t.goodput_rps for t in self.tenants)

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.tenants)

    @property
    def shed(self) -> int:
        return sum(t.shed for t in self.tenants)

    def tenant(self, name: str) -> TenantReport:
        for t in self.tenants:
            if t.tenant == name:
                return t
        raise ConfigurationError(f"no tenant named {name!r}")

    def summary(self) -> str:
        mode = "pipelined" if self.pipelined else "synchronous"
        lines = [
            f"cluster [{mode}]: {self.completed} completed in "
            f"{self.duration_s:.3f} s, aggregate goodput "
            f"{self.goodput_rps:,.0f} req/s, {self.shed} shed"
        ]
        lines.extend("  " + t.summary() for t in self.tenants)
        return "\n".join(lines)


class _TenantState:
    """Mutable per-tenant bookkeeping of one run."""

    def __init__(
        self,
        spec: TenantSpec,
        runtime: ServingRuntime,
        autoscaler: Autoscaler | None,
    ) -> None:
        self.spec = spec
        self.runtime = runtime
        self.autoscaler = autoscaler
        self.arrivals = np.empty(0)
        self.cursor = 0
        self.sample_cursor = 0
        self.requests: list[ServeRequest] = []
        self.shed_queue = 0
        self.shed_deadline = 0
        self.completed = 0
        self.busy_ns_base = 0
        self.replica_seconds = 0.0
        #: Run-start baselines for the runtime's cumulative
        #: fault-recovery tallies (reports show per-run deltas).
        self.shed_failed_base = 0
        self.restarts_base = 0
        self.reprograms_base = 0
        #: Restart events already fed to the autoscaler.
        self.restarts_seen = 0

    def next_sample(self) -> np.ndarray:
        x = self.spec.samples[
            self.sample_cursor % len(self.spec.samples)
        ]
        self.sample_cursor += 1
        return x

    @property
    def draining(self) -> bool:
        """All arrivals handled; only queued/in-flight work remains."""
        return self.cursor >= len(self.arrivals)

    @property
    def done(self) -> bool:
        return (
            self.draining
            and len(self.runtime.batcher) == 0
            and self.runtime.inflight == 0
        )


class ServingCluster:
    """Runs several tenants' deployments over one shared bank pool."""

    def __init__(
        self,
        tenants: list[TenantSpec],
        config: PrimeConfig = DEFAULT_PRIME_CONFIG,
        pipelined: bool = True,
        clock=None,
        sleep=None,
        poll_interval_s: float = 5e-5,
    ) -> None:
        if not tenants:
            raise ConfigurationError("cluster needs at least one tenant")
        names = [t.topology.name for t in tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError("tenant names must be unique")
        self.config = config
        self.pipelined = pipelined
        self.clock = clock or time.perf_counter
        self.sleep = sleep or time.sleep
        self.poll_interval_s = poll_interval_s
        self.scheduler = BankScheduler(config)
        self._states: list[_TenantState] = []
        try:
            # Two-phase deploy: constructing every runtime with
            # ``defer_spawn`` starts all tenants' process-pool workers
            # forking and programming concurrently; only then does
            # ``finish_deploy`` await each in turn.  Cluster startup
            # wall time is therefore bounded by the slowest single
            # replica's program cost, not the tenant x replica sum.
            # (Thread/serial tenants have no spawn to defer — their
            # finish_deploy is a no-op.)
            for spec in tenants:
                runtime = ServingRuntime(
                    spec.network,
                    spec.topology,
                    config=config,
                    serve_config=spec.serve_config,
                    scheduler=self.scheduler,
                    max_replicas=spec.replicas,
                    calibration=spec.calibration,
                    clock=clock,
                    health=spec.health,
                    fault_plan=spec.fault_plan,
                    defer_spawn=True,
                )
                autoscaler = (
                    Autoscaler(runtime, spec.autoscaler, clock=self.clock)
                    if spec.autoscaler is not None
                    else None
                )
                self._states.append(
                    _TenantState(spec, runtime, autoscaler)
                )
            for state in self._states:
                state.runtime.finish_deploy()
        except BaseException:
            self.close()
            raise
        self._closed = False

    # -- access ---------------------------------------------------------

    @property
    def runtimes(self) -> list[ServingRuntime]:
        return [s.runtime for s in self._states]

    def runtime(self, name: str) -> ServingRuntime:
        for state in self._states:
            if state.runtime.name == name:
                return state.runtime
        raise ConfigurationError(f"no tenant named {name!r}")

    # -- lifecycle ------------------------------------------------------

    def warmup(self) -> None:
        """Serve one untimed micro-batch per replica per tenant.

        Pays every worker's one-time programming + calibration outside
        the measured window, exactly like ``LoadGenerator.warmup``.
        """
        for state in self._states:
            runtime = state.runtime
            n = runtime.max_batch * max(runtime.replicas, 1)
            runtime.serve(
                np.stack([state.next_sample() for _ in range(n)])
            )

    def close(self) -> None:
        for state in self._states:
            try:
                state.runtime.close()
            except Exception:
                pass
        self._closed = True

    def __enter__(self) -> "ServingCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            for state in self._states:
                state.runtime._inflight.clear()
                state.runtime.batcher._queue.clear()
        self.close()

    # -- the loop -------------------------------------------------------

    def run(self, n_requests: int) -> ClusterReport:
        """Drive ``n_requests`` open-loop arrivals *per tenant*.

        Returns when every admitted request has completed and every
        shed request is accounted for.
        """
        if n_requests < 1:
            raise ConfigurationError("n_requests must be >= 1")
        start = self.clock()
        for state in self._states:
            process = ArrivalProcess(
                state.spec.rate_rps,
                shape=state.spec.shape,
                seed=state.spec.seed,
            )
            state.arrivals = start + process.times(n_requests)
            state.cursor = 0
            state.requests = []
            state.shed_queue = 0
            state.shed_deadline = 0
            state.completed = 0
            state.busy_ns_base = state.runtime.busy_ns
            state.replica_seconds = 0.0
            state.shed_failed_base = state.runtime.shed_failed
            state.restarts_base = len(state.runtime.restarts)
            state.reprograms_base = len(state.runtime.reprograms)
            state.restarts_seen = len(state.runtime.restarts)
        mode = "pipelined" if self.pipelined else "synchronous"
        with telemetry.span(
            "serve.cluster",
            tenants=len(self._states),
            requests=n_requests,
            mode=mode,
        ):
            last = start
            while not all(s.done for s in self._states):
                progress = False
                now = self.clock()
                for state in self._states:
                    progress |= self._step_tenant(state, now)
                # Accrue replica-time *after* stepping so the wall
                # time spent inside a blocking synchronous pump lands
                # in this iteration's interval, not the next one's
                # (which never comes for the final iteration).
                tick = self.clock()
                for state in self._states:
                    state.replica_seconds += (
                        state.runtime.replicas * (tick - last)
                    )
                last = tick
                if not progress:
                    self.sleep(self.poll_interval_s)
            end = self.clock()
        return self._report(end - start)

    def _step_tenant(self, state: _TenantState, now: float) -> bool:
        """One loop iteration for one tenant; True if work moved."""
        runtime = state.runtime
        admission = state.spec.admission or AdmissionPolicy()
        progress = False
        # 1. Admit every arrival due by now (or shed at the door).
        while (
            state.cursor < len(state.arrivals)
            and state.arrivals[state.cursor] <= now
        ):
            t_arrival = state.arrivals[state.cursor]
            state.cursor += 1
            progress = True
            if (
                admission.max_queue_depth is not None
                and runtime.batcher.queue_depth
                >= admission.max_queue_depth
            ):
                state.shed_queue += 1
                if telemetry.enabled():
                    telemetry.count(
                        "serve.shed",
                        reason="queue_depth",
                        tenant=runtime.tenant,
                    )
                continue
            state.requests.append(runtime.submit(state.next_sample()))
            if state.autoscaler is not None:
                state.autoscaler.observe(t_arrival)
        # 2. Drop queued requests that already blew their deadline.
        if admission.deadline_s is not None:
            dropped = runtime.batcher.drop_stale(
                admission.deadline_s, now=now
            )
            state.shed_deadline += len(dropped)
            progress |= bool(dropped)
        # 3. Move batches: non-blocking poll (pipelined) or the
        #    synchronous dispatch-then-wait pump (baseline).
        flush = state.draining
        if self.pipelined:
            done = runtime.poll(flush=flush)
        else:
            done = runtime.pump(flush=flush)
        state.completed += done
        progress |= done > 0
        # Feed executed restarts (and their measured reprogram cost)
        # to the autoscaler: crash recovery holds shrinks for a
        # restart-cost-sized horizon (Autoscaler.note_restart).
        if state.autoscaler is not None:
            while state.restarts_seen < len(runtime.restarts):
                event = runtime.restarts[state.restarts_seen]
                state.restarts_seen += 1
                state.autoscaler.note_restart(event.cost_s, now=now)
        # 4. Let the autoscaler react, clamped to what the shared
        #    free-bank pool can actually host right now.  Gate on
        #    outstanding work rather than future arrivals: a saturating
        #    burst can be fully admitted (hence "draining") in one
        #    iteration while a huge backlog still needs the grow.
        if state.autoscaler is not None and not state.done:
            footprint = len(
                runtime.deployment.replica_banks[0]
            )
            headroom = len(self.scheduler.free_banks) // footprint
            event = state.autoscaler.step(
                now=now,
                max_replicas=runtime.replicas + headroom,
            )
            progress |= event is not None
        return progress

    # -- reporting ------------------------------------------------------

    def _report(self, duration_s: float) -> ClusterReport:
        reports = []
        for state in self._states:
            runtime = state.runtime
            latencies = sorted(
                r.latency_s * 1e3 for r in state.requests if r.done
            )
            busy_s = (runtime.busy_ns - state.busy_ns_base) / 1e9
            idle = (
                max(0.0, 1.0 - busy_s / state.replica_seconds)
                if state.replica_seconds > 0
                else 0.0
            )
            events = tuple(
                state.autoscaler.events if state.autoscaler else ()
            )
            report = TenantReport(
                tenant=runtime.tenant,
                offered=len(state.arrivals),
                admitted=len(state.requests),
                shed_queue=state.shed_queue,
                shed_deadline=state.shed_deadline,
                completed=state.completed,
                duration_s=duration_s,
                p50_ms=nearest_rank(latencies, 50.0),
                p99_ms=nearest_rank(latencies, 99.0),
                p999_ms=nearest_rank(latencies, 99.9),
                mean_ms=(
                    sum(latencies) / len(latencies) if latencies else 0.0
                ),
                replicas_final=runtime.replicas,
                mode=runtime.mode,
                replica_idle_fraction=idle,
                shed_failed=(
                    runtime.shed_failed - state.shed_failed_base
                ),
                replica_restarts=(
                    len(runtime.restarts) - state.restarts_base
                ),
                reprograms=(
                    len(runtime.reprograms) - state.reprograms_base
                ),
                scale_events=events,
                requests=tuple(r for r in state.requests if r.done),
            )
            reports.append(report)
            if telemetry.enabled():
                telemetry.gauge(
                    "serve.goodput_rps",
                    report.goodput_rps,
                    tenant=report.tenant,
                )
                telemetry.gauge(
                    "serve.replica_idle",
                    report.replica_idle_fraction,
                    tenant=report.tenant,
                )
        return ClusterReport(
            tenants=tuple(reports),
            duration_s=duration_s,
            pipelined=self.pipelined,
        )
