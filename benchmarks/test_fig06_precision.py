"""Figure 6: classification accuracy vs input/weight precision.

The paper trains a LeNet-style CNN on MNIST and sweeps dynamic-fixed-
point input and weight precision, finding that a few bits suffice
(3-bit/3-bit ≈ 99% there) — the justification for PRIME's 3-bit
drivers + 4-bit cells + composing scheme.  This regenerates the study
on the synthetic digit set (the offline MNIST substitute) and also
validates the composing ablation: 6-bit/8-bit composed precision is
as good as the float model.
"""

import pytest

from repro.eval.precision_study import precision_study
from repro.eval.reporting import render_table

INPUT_BITS = (1, 2, 3, 4, 6, 8)
WEIGHT_BITS = (2, 3, 4, 8)


@pytest.fixture(scope="module")
def study(fig6_reference):
    # The trained reference comes from the session-scoped artifact-
    # cache fixture, so warm runs skip the ~18 s retrain entirely.
    return precision_study(
        input_bit_range=INPUT_BITS,
        weight_bit_range=WEIGHT_BITS,
        reference=fig6_reference,
    )


def test_figure6_precision_grid(once, study):
    result = once(lambda: study)

    rows = []
    for wb in WEIGHT_BITS:
        rows.append(
            [f"weight {wb}b"]
            + [f"{result.grid[(ib, wb)]:.3f}" for ib in INPUT_BITS]
        )
    print()
    print(
        render_table(
            f"Figure 6 — accuracy vs precision "
            f"(float reference {result.float_accuracy:.3f})",
            ["series", *[f"in {ib}b" for ib in INPUT_BITS]],
            rows,
        )
    )

    # The float CNN reaches MNIST-class accuracy on the synthetic set.
    assert result.float_accuracy > 0.95
    # 1-bit inputs are catastrophic; paper's curves collapse there too.
    assert result.grid[(1, 8)] < 0.5
    # Accuracy is monotone-ish in input precision at 8-bit weights.
    assert result.grid[(2, 8)] < result.grid[(4, 8)] <= (
        result.grid[(8, 8)] + 0.02
    )
    # A few bits recover the float accuracy (paper: 3-bit/3-bit ≈ 99%;
    # our harder synthetic set saturates by 4/4).
    assert result.grid[(4, 4)] > result.float_accuracy - 0.03
    # PRIME's operating point (6-bit inputs, 8-bit weights) is
    # indistinguishable from float.
    assert result.grid[(6, 8)] > result.float_accuracy - 0.015
    # More weight bits never hurt at fixed input precision.
    assert result.grid[(4, 8)] >= result.grid[(4, 3)] - 0.02
