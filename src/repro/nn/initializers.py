"""Weight initialisers."""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform init — suits sigmoid networks."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He normal init — suits ReLU networks."""
    return rng.standard_normal(shape) * np.sqrt(2.0 / fan_in)
