"""Open-loop arrival processes for datacenter traffic simulation.

The closed-loop :class:`~repro.serve.loadgen.LoadGenerator` issues a
request only when a previous one returns, so it can never observe
saturation: offered load adapts to service capacity by construction.
An *open-loop* arrival process is the opposite — request arrival times
are drawn ahead of time from a traffic model and do not care whether
the server keeps up.  Queues grow, admission control sheds, and tail
latency under overload becomes measurable; this is the regime PRIME's
bank-level-parallelism section gestures at ("many applications, many
concurrent requests") but never simulates.

:class:`ArrivalProcess` draws arrival timestamps from a (possibly
non-homogeneous) Poisson process via thinning: a base ``rate_rps``
modulated by a :class:`TrafficShape` — constant, periodic bursts, a
diurnal sinusoid, or a one-off spike.  Everything is deterministic
from the seed: the same process yields the same timestamps on every
run, and ``times(n)`` is a prefix of ``times(m)`` for ``n <= m``, so
traces are reproducible across the pipelined/synchronous comparison
benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["TrafficShape", "ArrivalProcess"]


@dataclass(frozen=True)
class TrafficShape:
    """A time-varying rate multiplier: ``rate(t) = base * factor(t)``.

    Build via the classmethods; ``factor`` is vectorised over numpy
    arrays of timestamps and always non-negative, and :attr:`peak`
    upper-bounds it (the thinning envelope).
    """

    kind: str = "constant"
    #: Burst shape: rate multiplies by ``factor_up`` during the first
    #: ``burst_len_s`` of every ``period_s`` window.
    factor_up: float = 1.0
    period_s: float = 1.0
    burst_len_s: float = 0.0
    #: Diurnal shape: ``1 + amplitude * sin(2*pi*t/period_s)``.
    amplitude: float = 0.0
    #: Spike shape: rate multiplies by ``factor_up`` inside the window
    #: ``[at_s, at_s + burst_len_s)``.
    at_s: float = 0.0

    # -- constructors ---------------------------------------------------

    @classmethod
    def constant(cls) -> "TrafficShape":
        """Homogeneous Poisson traffic."""
        return cls(kind="constant")

    @classmethod
    def burst(
        cls, factor: float, period_s: float, burst_len_s: float
    ) -> "TrafficShape":
        """Square-wave bursts: ``factor`` x rate for ``burst_len_s``
        at the start of every ``period_s`` window, base rate between."""
        if factor < 0 or period_s <= 0 or not 0 <= burst_len_s <= period_s:
            raise ConfigurationError("invalid burst shape")
        return cls(
            kind="burst",
            factor_up=factor,
            period_s=period_s,
            burst_len_s=burst_len_s,
        )

    @classmethod
    def diurnal(cls, amplitude: float, period_s: float) -> "TrafficShape":
        """Sinusoidal day/night swing, ``amplitude`` in [0, 1]."""
        if not 0 <= amplitude <= 1 or period_s <= 0:
            raise ConfigurationError("invalid diurnal shape")
        return cls(kind="diurnal", amplitude=amplitude, period_s=period_s)

    @classmethod
    def spike(
        cls, at_s: float, len_s: float, factor: float
    ) -> "TrafficShape":
        """A single overload spike of ``factor`` x rate at ``at_s``."""
        if factor < 0 or len_s < 0:
            raise ConfigurationError("invalid spike shape")
        return cls(
            kind="spike", at_s=at_s, burst_len_s=len_s, factor_up=factor
        )

    # -- evaluation -----------------------------------------------------

    def factor(self, t: np.ndarray) -> np.ndarray:
        """The rate multiplier at timestamps ``t`` (vectorised)."""
        t = np.asarray(t, dtype=np.float64)
        if self.kind == "constant":
            return np.ones_like(t)
        if self.kind == "burst":
            in_burst = np.mod(t, self.period_s) < self.burst_len_s
            return np.where(in_burst, self.factor_up, 1.0)
        if self.kind == "diurnal":
            return 1.0 + self.amplitude * np.sin(
                2.0 * math.pi * t / self.period_s
            )
        if self.kind == "spike":
            in_spike = (t >= self.at_s) & (
                t < self.at_s + self.burst_len_s
            )
            return np.where(in_spike, self.factor_up, 1.0)
        raise ConfigurationError(f"unknown traffic shape {self.kind!r}")

    @property
    def peak(self) -> float:
        """An upper bound on :meth:`factor` — the thinning envelope."""
        if self.kind == "constant":
            return 1.0
        if self.kind in ("burst", "spike"):
            return max(1.0, self.factor_up)
        if self.kind == "diurnal":
            return 1.0 + self.amplitude
        raise ConfigurationError(f"unknown traffic shape {self.kind!r}")


class ArrivalProcess:
    """Deterministic open-loop arrival-time generator.

    Draws from a Poisson process of base ``rate_rps`` modulated by
    ``shape`` using the thinning method: candidate gaps are exponential
    at the peak rate, and each candidate survives with probability
    ``factor(t) / peak``.  A fresh ``numpy`` Philox-family generator is
    seeded per call, so :meth:`times` is a pure function of
    ``(rate_rps, shape, seed)``.
    """

    def __init__(
        self,
        rate_rps: float,
        shape: TrafficShape | None = None,
        seed: int = 0,
        start_s: float = 0.0,
    ) -> None:
        if rate_rps <= 0:
            raise ConfigurationError("rate_rps must be > 0")
        self.rate_rps = float(rate_rps)
        self.shape = shape or TrafficShape.constant()
        self.seed = int(seed)
        self.start_s = float(start_s)

    def times(self, n: int) -> np.ndarray:
        """The first ``n`` arrival timestamps (seconds, ascending)."""
        if n < 0:
            raise ConfigurationError("n must be >= 0")
        if n == 0:
            return np.empty(0, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        lam = self.rate_rps * self.shape.peak
        out: list[float] = []
        t = self.start_s
        # Fixed chunk size: the draw sequence must not depend on ``n``
        # or times(n) would stop being a prefix of times(m > n).
        chunk = 256
        while len(out) < n:
            gaps = rng.exponential(1.0 / lam, size=chunk)
            accept_draw = rng.random(chunk)
            candidates = t + np.cumsum(gaps)
            keep = accept_draw <= (
                self.shape.factor(candidates) / self.shape.peak
            )
            out.extend(candidates[keep].tolist())
            t = float(candidates[-1])
        return np.asarray(out[:n], dtype=np.float64)

    def until(self, horizon_s: float) -> np.ndarray:
        """Every arrival in ``[start_s, start_s + horizon_s)``."""
        if horizon_s <= 0:
            return np.empty(0, dtype=np.float64)
        end = self.start_s + horizon_s
        n = 64
        while True:
            times = self.times(n)
            if times[-1] >= end:
                return times[times < end]
            n *= 2
