"""Ablation: bank-level parallelism (§IV-B2).

PRIME treats the FF subarrays of every bank as an independent NPU —
64 NPUs in total.  Throughput should scale with the number of banks
enabled until the batch stops covering them.
"""

from dataclasses import replace

from repro.core.compiler import PrimeCompiler
from repro.core.executor import PrimeExecutor
from repro.eval.reporting import render_table
from repro.eval.workloads import get_workload
from repro.params.memory import DEFAULT_ORGANIZATION
from repro.params.prime import PrimeConfig

BANK_COUNTS = (1, 2, 8, 16, 64)


def sweep_banks():
    results = {}
    top = get_workload("MLP-M").topology()
    # sweep by constructing organisations with N total banks
    for total in BANK_COUNTS:
        chips = 1 if total <= 8 else 8
        banks = total // chips
        org = replace(
            DEFAULT_ORGANIZATION,
            chips_per_rank=chips,
            banks_per_chip=banks,
        )
        config = PrimeConfig(organization=org)
        plan = PrimeCompiler(config).compile(top)
        rep = PrimeExecutor(config).estimate(plan, batch=4096)
        results[total] = rep
    return results


def test_bank_parallelism_scaling(once):
    results = once(sweep_banks)

    base = results[1].latency_s
    rows = [
        [n, f"{base / rep.latency_s:.1f}x", f"{rep.latency_s * 1e3:.3f} ms"]
        for n, rep in sorted(results.items())
    ]
    print()
    print(
        render_table(
            "Bank-level parallelism sweep (MLP-M, batch 4096)",
            ["banks", "speedup vs 1 bank", "batch latency"],
            rows,
        )
    )

    # monotone scaling with bank count
    latencies = [results[n].latency_s for n in sorted(results)]
    assert all(a >= b for a, b in zip(latencies, latencies[1:]))
    # near-linear up to 64 banks for a large batch
    speedup64 = results[1].latency_s / results[64].latency_s
    assert speedup64 > 30.0
    # energy per sample is bank-count independent (same work)
    e1 = results[1].energy_per_sample
    e64 = results[64].energy_per_sample
    assert abs(e1 - e64) / e1 < 0.05
