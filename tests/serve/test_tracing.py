"""End-to-end request tracing, telemetry shipping, and SLO monitoring.

The acceptance bar of the observability layer:

* serial and process dispatch of the same traffic merge to
  **bit-identical counter totals** and the same span-name set — worker
  telemetry is a pure function of the work, wherever it runs;
* the merged Chrome trace shows the coordinator and each replica on
  distinct pid tracks, with per-request lifecycle spans
  (enqueue → batcher → queue → replica → reply);
* ``serving_report()`` per-stage times sum to the measured end-to-end
  latency within 1%;
* :class:`LoadReport` percentiles match ``telemetry.percentile`` on the
  tenant-labelled latency histogram exactly.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import telemetry
from repro.nn.topology import parse_topology
from repro.params.crossbar import CrossbarParams
from repro.params.memory import MemoryOrganization
from repro.params.prime import PrimeConfig
from repro.params.reram import PT_TIO2_DEVICE
from repro.resilience import ResiliencePolicy
from repro.serve import LoadGenerator, ServeConfig, ServingRuntime
from repro.telemetry.export import WALL_PID, chrome_trace_events

pytestmark = pytest.mark.serve

NOISE_FREE = dataclasses.replace(
    PT_TIO2_DEVICE, programming_sigma=0.0, read_noise_sigma=0.0
)
SMALL_ORG = MemoryOrganization(
    subarrays_per_bank=8,
    mats_per_subarray=16,
    mat_rows=32,
    mat_cols=32,
)
TOPOLOGY = parse_topology("serve-tiny", "24-20-6")


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    yield
    telemetry.disable()


def _small_config() -> PrimeConfig:
    return PrimeConfig(
        crossbar=CrossbarParams(
            rows=32, cols=32, sense_amps=8, device=NOISE_FREE
        ),
        organization=SMALL_ORG,
        resilience=ResiliencePolicy(),
    )


@pytest.fixture(scope="module")
def network():
    return TOPOLOGY.build(rng=np.random.default_rng(2))


@pytest.fixture(scope="module")
def samples():
    return np.random.default_rng(11).standard_normal((20, 24))


def _runtime(network, samples, mode, max_replicas=2, **serve_kw):
    serve_kw.setdefault("max_batch", 5)
    return ServingRuntime(
        network,
        TOPOLOGY,
        config=_small_config(),
        serve_config=ServeConfig(mode=mode, **serve_kw),
        calibration=samples,
        max_replicas=max_replicas,
    )


def _counter_totals(session) -> dict:
    # ``serve.dispatch.shm_*`` counts the payload transport (shared
    # memory vs pickling), which only exists in process mode; every
    # model/hardware counter must still match bit-identically.  The
    # ``mode=`` label names the dispatch mode by design — strip it so
    # the *counts* still have to match across modes.
    return {
        (
            c.name,
            tuple(
                sorted(
                    (k, v)
                    for k, v in c.labels.items()
                    if k != "mode"
                )
            ),
        ): c.value
        for c in session.metrics.counters()
        if not c.name.startswith("serve.dispatch.shm_")
    }


def _serve_session(network, samples, mode, max_replicas):
    """One full serve() run under a fresh session; returns the session."""
    session = telemetry.enable()
    with _runtime(
        network, samples, mode, max_replicas=max_replicas
    ) as runtime:
        runtime.serve(samples)
    telemetry.disable()
    return session


class TestTraceContext:
    def test_requests_carry_deterministic_trace_ids(
        self, network, samples
    ):
        with _runtime(network, samples, "serial") as runtime:
            first = runtime.submit(samples[0])
            second = runtime.submit(samples[1])
            runtime.pump(flush=True)
        assert first.tenant == runtime.tenant
        assert first.trace_id == f"{runtime.tenant}-00000000"
        assert second.trace_id == f"{runtime.tenant}-00000001"
        ctx = first.trace
        assert ctx.tenant == runtime.tenant
        assert ctx.arrival_s == first.t_enqueue

    def test_lifecycle_timestamps_are_ordered(self, network, samples):
        with _runtime(network, samples, "serial") as runtime:
            request = runtime.submit(samples[0])
            runtime.pump(flush=True)
        assert (
            request.t_enqueue
            <= request.t_batched
            <= request.t_dispatched
            <= request.t_done
        )


class TestSerialProcessDeterminism:
    def test_counter_totals_bit_identical_single_replica(
        self, network, samples
    ):
        """With one replica each, the full counter set (programming
        included) is bit-identical between dispatch modes."""
        serial = _serve_session(network, samples, "serial", 1)
        process = _serve_session(network, samples, "process", 1)
        assert _counter_totals(serial) == _counter_totals(process)

    def test_span_name_sets_match(self, network, samples):
        serial = _serve_session(network, samples, "serial", 1)
        process = _serve_session(network, samples, "process", 1)
        assert {s.name for s in serial.tracer.spans} == {
            s.name for s in process.tracer.spans
        }

    def test_execution_counters_identical_two_replicas(
        self, network, samples
    ):
        """With R replicas, programming happens R times in process mode
        vs once serially — so warm both runtimes until every replica's
        one-time programming telemetry has arrived, then compare a
        fresh measured window: pure execution, bit-identical."""
        sessions = {}
        for mode in ("serial", "process"):
            telemetry.enable()
            with _runtime(
                network, samples, mode, max_replicas=2
            ) as runtime:
                # Warmup until each worker has served (and therefore
                # shipped its one-time programming telemetry) — batches
                # drain a shared queue, so which worker runs a batch is
                # up to the OS scheduler.  Serial mode has one
                # programmed copy however many replicas the grant holds.
                programs = (
                    runtime.replicas if mode == "process" else 1
                )
                for _ in range(50):
                    runtime.serve(samples)
                    if (
                        telemetry.counter_total("serve.programs")
                        >= programs
                    ):
                        break
                assert (
                    telemetry.counter_total("serve.programs") == programs
                )
                session = telemetry.enable(fresh=True)
                runtime.serve(samples)
            sessions[mode] = session
            telemetry.disable()
        assert _counter_totals(sessions["serial"]) == _counter_totals(
            sessions["process"]
        )

    def test_histogram_counts_match_across_modes(self, network, samples):
        serial = _serve_session(network, samples, "serial", 1)
        process = _serve_session(network, samples, "process", 1)

        def counts(session):
            return {
                (h.name, tuple(sorted(h.labels.items()))): h.count
                for h in session.metrics.histograms()
            }

        assert counts(serial) == counts(process)


class TestChromeTraceExport:
    def test_replicas_get_distinct_pid_tracks(self, network, samples):
        session = _serve_session(network, samples, "process", 2)
        events = chrome_trace_events(session)
        json.dumps(events)  # valid JSON
        names = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e.get("ph") == "M"
        }
        assert "wall clock (coordinator)" in names
        replica_pids = {
            pid
            for label, pid in names.items()
            if label.startswith("wall clock (replica:")
        }
        assert len(replica_pids) == 2
        assert WALL_PID not in replica_pids
        # Worker spans actually landed on those pids.
        span_pids = {
            e["pid"]
            for e in events
            if e.get("ph") == "X" and e["name"] == "executor.run_functional"
        }
        assert replica_pids <= span_pids

    def test_per_request_spans_cover_enqueue_to_reply(
        self, network, samples
    ):
        session = _serve_session(network, samples, "serial", 1)
        spans = session.tracer.spans
        requests = [s for s in spans if s.name == "serve.request"]
        assert len(requests) == len(samples)
        for parent in requests:
            children = [
                s for s in spans if s.parent_index == parent.index
            ]
            stages = {s.name for s in children}
            assert stages == {
                "serve.request.batcher",
                "serve.request.queue",
                "serve.request.replica",
            }
            # Children tile the parent contiguously.
            ordered = sorted(children, key=lambda s: s.start_ns)
            assert ordered[0].start_ns == parent.start_ns
            assert ordered[-1].end_ns == parent.end_ns
            for left, right in zip(ordered, ordered[1:]):
                assert left.end_ns == right.start_ns
            assert "trace_id" in parent.attrs


class TestServingReport:
    def test_stage_sums_match_end_to_end_latency(self, network, samples):
        session = _serve_session(network, samples, "process", 2)
        report = telemetry.serving_report(session)
        (tenant,) = report.tenants
        assert tenant.requests == len(samples)
        assert tenant.coverage == pytest.approx(1.0, abs=0.01)
        assert sum(tenant.stage_mean_ms.values()) == pytest.approx(
            tenant.mean_ms, rel=0.01
        )

    def test_slo_rows_evaluate_against_served_traffic(
        self, network, samples
    ):
        session = _serve_session(network, samples, "serial", 1)
        monitor = telemetry.SLOMonitor(
            [
                telemetry.SLOObjective(
                    TOPOLOGY.name, percentile=95.0, threshold_ms=1e4
                )
            ]
        )
        report = telemetry.serving_report(session, slo=monitor)
        (status,) = report.slo
        assert status.requests == len(samples)
        assert status.met
        assert status.attainment == 1.0


class TestLoadReportParity:
    def test_report_percentiles_match_telemetry_histogram(
        self, network, samples
    ):
        """Satellite 2: LoadReport and the tenant-labelled telemetry
        histogram are two views of the same samples — identical
        nearest-rank percentiles."""
        with _runtime(network, samples, "serial") as runtime:
            generator = LoadGenerator(runtime, samples)
            generator.warmup()
            # Fresh session after warmup: the histogram then holds
            # exactly the measured window's requests.
            telemetry.enable(fresh=True)
            report = generator.run(40)
        tenant = report.tenant
        assert tenant == runtime.tenant
        hist = telemetry.session().metrics.histogram(
            "serve.latency_ms", tenant=tenant
        )
        assert hist.count == 40
        for q, expected in (
            (50.0, report.p50_ms),
            (95.0, report.p95_ms),
            (99.0, report.p99_ms),
        ):
            assert (
                telemetry.percentile(
                    "serve.latency_ms", q, tenant=tenant
                )
                == expected
            )
        assert hist.mean == pytest.approx(report.mean_ms)


class TestPumpGauges:
    def test_queue_and_inflight_gauges_sampled_each_pump(
        self, network, samples
    ):
        telemetry.enable()
        with _runtime(network, samples, "serial") as runtime:
            runtime.serve(samples)
            tenant = runtime.tenant
        assert (
            telemetry.gauge_value("serve.inflight_batches", tenant=tenant)
            == 0
        )
        assert (
            telemetry.gauge_value("serve.queue_depth", tenant=tenant) == 0
        )
        occupancy = telemetry.session().metrics.histogram(
            "serve.batch_occupancy", tenant=tenant
        )
        assert occupancy.count == 4  # 20 samples / max_batch 5
        assert occupancy.maximum <= 1.0


class TestShippingDisabled:
    def test_no_telemetry_no_shipping(self, network, samples):
        """With telemetry off at deploy time nothing ships and nothing
        records — observability is free when off."""
        with _runtime(network, samples, "serial") as runtime:
            assert runtime.spec.ship_telemetry is False
            out = runtime.serve(samples)
        assert out.shape == (len(samples), 6)

    def test_outputs_identical_with_and_without_telemetry(
        self, network, samples
    ):
        with _runtime(network, samples, "serial") as runtime:
            plain = runtime.serve(samples)
        telemetry.enable()
        with _runtime(network, samples, "serial") as runtime:
            traced = runtime.serve(samples)
        np.testing.assert_array_equal(plain, traced)
