"""Technology, timing, energy, and area parameters.

This package is the single home of every numeric constant the simulator
uses, organised to mirror the paper's experiment-setup section:

* :mod:`repro.params.reram` — the Pt/TiO2-x/Pt device of Gao et al.
  adopted by the paper (Ron/Roff = 1 kΩ / 20 kΩ, 2 V SET/RESET).
* :mod:`repro.params.crossbar` — the 256×256 FF-mat compute parameters
  (3-bit input voltages, 4-bit MLC cells, 6-bit reconfigurable SAs).
* :mod:`repro.params.memory` — Table IV's ReRAM main-memory organisation
  and timing (16 GB, 8 chips × 8 banks, 533 MHz IO bus,
  tRCD-tCL-tRP-tWR = 22.5-9.8-0.5-41.4 ns).
* :mod:`repro.params.cpu` — Table IV's 4-core 3 GHz out-of-order CPU.
* :mod:`repro.params.npu` — Table V's DianNao-style parallel NPU
  (16×16 multipliers, 256-1 adder tree, 2 KB in/out + 32 KB weight
  buffers) in co-processor and 3D-stacked PIM variants.
* :mod:`repro.params.area` — the Figure 12 area-overhead model.
"""

from repro.params.reram import ReRAMDeviceParams, PT_TIO2_DEVICE
from repro.params.crossbar import CrossbarParams, DEFAULT_CROSSBAR
from repro.params.memory import (
    MemoryTiming,
    MemoryOrganization,
    DEFAULT_TIMING,
    DEFAULT_ORGANIZATION,
)
from repro.params.cpu import CpuParams, DEFAULT_CPU
from repro.params.npu import NpuParams, PNPU_CO, PNPU_PIM
from repro.params.area import AreaModel, DEFAULT_AREA_MODEL
from repro.params.prime import PrimeConfig, DEFAULT_PRIME_CONFIG

__all__ = [
    "ReRAMDeviceParams",
    "PT_TIO2_DEVICE",
    "CrossbarParams",
    "DEFAULT_CROSSBAR",
    "MemoryTiming",
    "MemoryOrganization",
    "DEFAULT_TIMING",
    "DEFAULT_ORGANIZATION",
    "CpuParams",
    "DEFAULT_CPU",
    "NpuParams",
    "PNPU_CO",
    "PNPU_PIM",
    "AreaModel",
    "DEFAULT_AREA_MODEL",
    "PrimeConfig",
    "DEFAULT_PRIME_CONFIG",
]
