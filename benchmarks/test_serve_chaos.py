"""Chaos goodput benchmark: serving through faults (the PR-9 gate).

Three paced two-replica deployments of the same tiny MLP serve the
same 400-request traffic:

* ``fault-free`` — the baseline goodput;
* ``kill``       — a seeded :class:`FaultPlan` kills one of the two
  replica workers mid-run (a real ``os._exit`` in the pool worker);
* ``drift``      — seeded conductance drift silently degrades one
  replica until the periodic health probe schedules background
  reprogramming.

Acceptance gates (the ISSUE's chaos criteria):

* the cluster recovers — the dead replica is respawned (>= 1 restart
  with measured cost) and the run completes without deadlock;
* goodput under the kill stays >= 0.8x fault-free;
* zero admitted requests are silently lost: every request either
  completes or is shed with a recorded reason;
* retried micro-batches are bit-identical — the whole served output
  equals ``ServingRuntime.reference`` despite the crash.

The run also writes ``chaos_serving_report.json`` (per-scenario
latency breakdown + retries/restarts/reprograms + the goodput table)
for the CI artifact, and prints the goodput table EXPERIMENTS.md
records.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import telemetry
from repro.nn.topology import parse_topology
from repro.params.crossbar import CrossbarParams
from repro.params.memory import MemoryOrganization
from repro.params.prime import PrimeConfig
from repro.params.reram import PT_TIO2_DEVICE
from repro.resilience import ResiliencePolicy
from repro.serve import ServeConfig, ServingRuntime
from repro.serve.health import FaultEvent, FaultPlan, HealthPolicy
from repro.telemetry.request import serving_report

pytestmark = [pytest.mark.serve, pytest.mark.chaos]

#: Requests per scenario.
REQUESTS = 400
#: Micro-batch size -> 50 paced batches per scenario.
MAX_BATCH = 8
#: Emulated device service time per micro-batch (s).
PACE_S = 0.05
#: Goodput ratio the faulted runs must hold against fault-free.
GOODPUT_FLOOR = 0.8

NOISE_FREE = dataclasses.replace(
    PT_TIO2_DEVICE, programming_sigma=0.0, read_noise_sigma=0.0
)
SMALL_ORG = MemoryOrganization(
    subarrays_per_bank=8,
    mats_per_subarray=16,
    mat_rows=32,
    mat_cols=32,
)
TOPOLOGY = parse_topology("serve-tiny", "24-20-6")

#: The fault schedules, keyed by scenario (= tenant label).  Both
#: faults round-robin onto a replica with traffic still behind it; the
#: drift lands at batch 2 so the first periodic probe round (every 8
#: dispatches) queues behind the corrupted batch and detects it.
PLANS = {
    "fault-free": (),
    "kill": (FaultEvent(batch_index=10, kind="kill"),),
    "drift": (
        FaultEvent(batch_index=2, kind="drift", magnitude=0.5, seed=3),
    ),
}

#: scenario -> measured run record (memoised across the gate tests).
_RUNS: dict[str, dict] = {}


def _config() -> PrimeConfig:
    return PrimeConfig(
        crossbar=CrossbarParams(
            rows=32, cols=32, sense_amps=8, device=NOISE_FREE
        ),
        organization=SMALL_ORG,
        resilience=ResiliencePolicy(),
    )


def _scenario(name: str) -> dict:
    """One measured chaos run; memoised per scenario."""
    if name in _RUNS:
        return _RUNS[name]
    if not telemetry.enabled():
        telemetry.enable()
    network = TOPOLOGY.build(rng=np.random.default_rng(2))
    calibration = np.random.default_rng(11).standard_normal((64, 24))
    traffic = np.random.default_rng(5).standard_normal((REQUESTS, 24))
    health = HealthPolicy(
        batch_timeout_s=60.0,
        backoff_base_s=0.0,
        on_exhausted="shed",
        probe_interval_batches=8,
        drift_threshold=0.01,
    )
    runtime = ServingRuntime(
        network,
        TOPOLOGY,
        config=_config(),
        serve_config=ServeConfig(
            mode="process",
            max_batch=MAX_BATCH,
            pace_batch_s=PACE_S,
            tenant=name,
        ),
        calibration=calibration,
        max_replicas=2,
        health=health,
        fault_plan=FaultPlan.of(*PLANS[name]),
    )
    with runtime:
        assert runtime.mode == "process" and runtime.replicas == 2
        requests = [runtime.submit(x) for x in traffic]
        start = time.perf_counter()
        runtime.pump(flush=True)
        duration_s = time.perf_counter() - start
        completed = [r for r in requests if r.done]
        shed = [r for r in requests if not r.done]
        # Zero silent losses: every admitted request completed or was
        # shed with a recorded reason.
        assert all(r.error is not None for r in shed)
        assert len(completed) + len(shed) == REQUESTS
        assert runtime.fault_plan.remaining == 0
        record = {
            "scenario": name,
            "admitted": REQUESTS,
            "completed": len(completed),
            "shed_failed": runtime.shed_failed,
            "duration_s": duration_s,
            "goodput_rps": len(completed) / duration_s,
            "restarts": [
                {
                    "replica": e.replica,
                    "reason": e.reason,
                    "cost_s": e.cost_s,
                }
                for e in runtime.restarts
            ],
            "reprograms": [
                {
                    "replica": e.replica,
                    "drift": e.drift,
                    "cost_s": e.cost_s,
                }
                for e in runtime.reprograms
            ],
        }
        # Bit-identity through the fault: the noise-free contract holds
        # per-sample for any batching, so the whole concatenated output
        # must equal the oracle — except the drift scenario's window
        # between injection and reprogramming, which is the documented
        # graceful-degradation regime (checked separately below).
        if name != "drift":
            served = np.stack([r.result for r in completed])
            reference = runtime.reference(
                np.stack([r.x for r in completed])
            )
            record["bit_identical"] = bool(
                np.array_equal(served, reference)
            )
        else:
            # Recovery restores exactness: a fresh post-reprogram pass
            # over the calibration batch must be bit-identical again.
            assert len(runtime.reprograms) >= 1
            tail = runtime.serve(calibration)
            record["bit_identical"] = bool(
                np.array_equal(tail, runtime.reference(calibration))
            )
    _RUNS[name] = record
    return record


def test_chaos_fault_free_baseline():
    record = _scenario("fault-free")
    assert record["completed"] == REQUESTS
    assert record["shed_failed"] == 0
    assert not record["restarts"] and not record["reprograms"]
    assert record["bit_identical"]


def test_chaos_kill_recovers_with_goodput_floor():
    """The headline gate: kill one of two replicas mid-run."""
    base = _scenario("fault-free")
    kill = _scenario("kill")
    # Recovery: the dead replica was respawned (measured cost), the
    # run drained without deadlock, nothing was lost silently.
    assert len(kill["restarts"]) == 1
    assert kill["restarts"][0]["reason"] == "crash"
    assert kill["restarts"][0]["cost_s"] > 0.0
    assert kill["completed"] + kill["shed_failed"] == REQUESTS
    assert kill["shed_failed"] == 0  # recovery succeeded; nothing shed
    # Retried batches bit-identical against the reference oracle.
    assert kill["bit_identical"]
    ratio = kill["goodput_rps"] / base["goodput_rps"]
    assert ratio >= GOODPUT_FLOOR, (
        f"goodput under a replica kill fell to {ratio:.2f}x fault-free "
        f"({kill['goodput_rps']:,.0f} vs {base['goodput_rps']:,.0f} "
        f"rps); the gate is {GOODPUT_FLOOR}x"
    )


def test_chaos_drift_reprogram_restores_exactness():
    base = _scenario("fault-free")
    drift = _scenario("drift")
    assert len(drift["reprograms"]) >= 1
    event = drift["reprograms"][0]
    assert event["replica"] == 0  # batch 2 -> replica 0 of two
    assert event["drift"] > 0.01 and event["cost_s"] > 0.0
    assert drift["completed"] == REQUESTS
    assert drift["bit_identical"]  # post-reprogram pass exact again
    ratio = drift["goodput_rps"] / base["goodput_rps"]
    assert ratio >= GOODPUT_FLOOR


def test_chaos_report_written(tmp_path_factory, request):
    """Render the goodput table and write the CI artifact."""
    records = [_scenario(name) for name in PLANS]
    print()
    print(
        f"{'scenario':>10} {'goodput_rps':>12} {'vs_base':>8} "
        f"{'restarts':>9} {'reprograms':>11} {'shed':>5} {'exact':>6}"
    )
    base_rps = records[0]["goodput_rps"]
    for r in records:
        print(
            f"{r['scenario']:>10} {r['goodput_rps']:>12,.0f} "
            f"{r['goodput_rps'] / base_rps:>7.2f}x "
            f"{len(r['restarts']):>9} {len(r['reprograms']):>11} "
            f"{r['shed_failed']:>5} {str(r['bit_identical']):>6}"
        )
    report = serving_report()
    payload = report.to_json()
    payload["chaos"] = {
        "requests_per_scenario": REQUESTS,
        "goodput_floor": GOODPUT_FLOOR,
        "scenarios": records,
    }
    out = Path(str(request.config.rootpath)) / "chaos_serving_report.json"
    out.write_text(json.dumps(payload, indent=1, default=str))
    # The per-tenant breakdown carries the fault-tolerance counters.
    by_tenant = {t.tenant: t for t in report.tenants}
    assert by_tenant["kill"].restarts == 1
    assert by_tenant["kill"].retries >= 1
    assert by_tenant["drift"].reprograms >= 1
    assert by_tenant["fault-free"].restarts == 0
    telemetry.disable()
