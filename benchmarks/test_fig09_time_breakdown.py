"""Figure 9: execution-time breakdown normalised to pNPU-co.

Single NPU / single PRIME bank (no bank parallelism).  The paper's
findings: pNPU-pim removes most of the memory-access time; PRIME
drives it to zero (hidden behind the Buffer subarrays).
"""

from repro.eval.experiments import figure9
from repro.eval.reporting import render_table
from repro.eval.workloads import MLBENCH_ORDER


def test_figure9_breakdown(once):
    result = once(figure9)

    rows = []
    for wl in MLBENCH_ORDER:
        for system in ("pNPU-co", "pNPU-pim", "PRIME"):
            parts = result.breakdown[wl][system]
            rows.append(
                [
                    wl,
                    system,
                    f"{parts['compute+buffer']:.4f}",
                    f"{parts['memory']:.4f}",
                ]
            )
    print()
    print(
        render_table(
            "Figure 9 — execution time vs pNPU-co (compute+buffer | memory)",
            ["workload", "system", "compute+buffer", "memory"],
            rows,
        )
    )

    for wl in MLBENCH_ORDER:
        co = result.breakdown[wl]["pNPU-co"]
        pim = result.breakdown[wl]["pNPU-pim"]
        prime = result.breakdown[wl]["PRIME"]
        # co normalises to 1.0 total
        assert abs(co["compute+buffer"] + co["memory"] - 1.0) < 1e-9
        # pim removes most memory time, keeps compute
        assert pim["memory"] < 0.4 * co["memory"]
        assert abs(pim["compute+buffer"] - co["compute+buffer"]) < 1e-9
        # PRIME's total is a small fraction of pNPU-co's
        assert prime["compute+buffer"] + prime["memory"] < 0.5
    # PRIME memory time is zero for single-bank workloads
    for wl in ("CNN-1", "CNN-2", "MLP-S", "MLP-M", "MLP-L"):
        assert result.breakdown[wl]["PRIME"]["memory"] == 0.0
    # MNIST-class workloads are memory-dominated on the co-processor
    for wl in ("CNN-1", "CNN-2", "MLP-S", "MLP-M", "MLP-L"):
        assert result.breakdown[wl]["pNPU-co"]["memory"] > 0.5
