"""Circuit-level component model (NVSim-style absolute numbers).

The paper derives its overheads from NVSim/CACTI models of each
peripheral block.  This module carries the same decomposition with
absolute per-block areas so that Figure 12's fractions *emerge* from
physical components instead of being asserted, and so design-space
sweeps (FF-subarray count vs peak GOPS vs area) have a physical basis.

Areas use a 65 nm-class process (the NPU baseline's node).  The mat
area is dominated by the 4F² crossbar plus its local periphery; the
added PRIME circuitry is sized to reproduce the paper's published
23/29/8-point decomposition when normalised — the individual numbers
are representative, the *ratios* are the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.params.crossbar import CrossbarParams, DEFAULT_CROSSBAR
from repro.params.memory import MemoryOrganization, DEFAULT_ORGANIZATION
from repro.units import um2


@dataclass(frozen=True)
class CircuitAreas:
    """Absolute areas of one mat's blocks (square meters).

    Baseline (memory-mode) blocks:

    * ``cell_array`` — 256×256 cells at 4F², F = 65 nm, plus wiring.
    * ``memory_periphery`` — local decoder, memory-mode drivers, SAs,
      and column mux of an unmodified mat.

    PRIME additions (Fig. 4 A/B/C):

    * ``multilevel_driver`` — voltage sources, latch, current
      amplifiers per wordline.
    * ``subtraction_sigmoid`` — analog subtraction + sigmoid units in
      the column mux.
    * ``control_mux`` — mode multiplexers, ReLU/max-pool logic,
      precision-control register/adder.
    """

    cell_array: float = 1100.0 * um2
    memory_periphery: float = 1650.0 * um2
    multilevel_driver: float = 632.5 * um2
    subtraction_sigmoid: float = 797.5 * um2
    control_mux: float = 220.0 * um2

    def __post_init__(self) -> None:
        for name in (
            "cell_array",
            "memory_periphery",
            "multilevel_driver",
            "subtraction_sigmoid",
            "control_mux",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def memory_mat(self) -> float:
        """Area of one unmodified memory mat."""
        return self.cell_array + self.memory_periphery

    @property
    def prime_additions(self) -> float:
        """Added area of one FF mat."""
        return (
            self.multilevel_driver
            + self.subtraction_sigmoid
            + self.control_mux
        )

    @property
    def ff_mat(self) -> float:
        """Area of one full-function mat."""
        return self.memory_mat + self.prime_additions

    def overhead_fractions(self) -> dict[str, float]:
        """Fig. 12 decomposition relative to a memory mat."""
        base = self.memory_mat
        return {
            "driver": self.multilevel_driver / base,
            "subtraction+sigmoid": self.subtraction_sigmoid / base,
            "control/mux/etc": self.control_mux / base,
        }

    @property
    def ff_mat_overhead(self) -> float:
        """Relative growth of an FF mat (~0.60)."""
        return self.prime_additions / self.memory_mat


DEFAULT_CIRCUIT_AREAS = CircuitAreas()


@dataclass(frozen=True)
class DesignPoint:
    """One configuration in the FF-subarray-count trade-off (§V-D)."""

    ff_subarrays_per_bank: int
    peak_gops: float
    area_overhead: float
    gops_per_overhead: float


def peak_gops_per_bank(
    ff_subarrays: int,
    xbar: CrossbarParams = DEFAULT_CROSSBAR,
    organization: MemoryOrganization = DEFAULT_ORGANIZATION,
) -> float:
    """Peak GOPS of one bank's FF mats.

    Every differential pair retires rows×logical_cols MACs (2 ops) per
    composed MVM of ``t_full_mvm`` seconds; pairs fire in parallel.
    """
    if ff_subarrays < 1:
        raise ConfigurationError("need at least one FF subarray")
    pairs = ff_subarrays * organization.mats_per_subarray // 2
    ops_per_mvm = 2.0 * xbar.rows * xbar.logical_cols
    return pairs * ops_per_mvm / xbar.t_full_mvm / 1e9


def sweep_ff_subarrays(
    counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    areas: CircuitAreas = DEFAULT_CIRCUIT_AREAS,
    xbar: CrossbarParams = DEFAULT_CROSSBAR,
    organization: MemoryOrganization = DEFAULT_ORGANIZATION,
    fixed_bank_overhead: float = 0.0389,
) -> list[DesignPoint]:
    """The peak-GOPS vs area-overhead trade-off of §V-D.

    The paper chose 2 FF subarrays per bank; the sweep shows the knee:
    GOPS grows linearly with FF subarrays while the chip overhead
    grows with them too, so GOPS-per-overhead is flat beyond the fixed
    cost — the 2-subarray point buys most of the benefit at 5.76%.
    """
    points = []
    mats_per_bank = (
        organization.subarrays_per_bank * organization.mats_per_subarray
    )
    for count in counts:
        if count >= organization.subarrays_per_bank:
            raise ConfigurationError(
                "FF subarrays must leave room for Mem/Buffer subarrays"
            )
        gops = peak_gops_per_bank(count, xbar, organization)
        ff_mats = count * organization.mats_per_subarray
        overhead = (
            ff_mats / mats_per_bank * areas.ff_mat_overhead
            + fixed_bank_overhead
        )
        points.append(
            DesignPoint(
                ff_subarrays_per_bank=count,
                peak_gops=gops,
                area_overhead=overhead,
                gops_per_overhead=gops / overhead,
            )
        )
    return points
