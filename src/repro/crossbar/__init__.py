"""ReRAM crossbar arrays and PRIME's modified peripheral circuits.

The modules mirror the blocks of Figure 4:

* :mod:`repro.crossbar.array` — one 256×256 crossbar usable as plain
  memory (SLC) or as a synaptic array (MLC), built on
  :class:`repro.device.CellArray`.
* :mod:`repro.crossbar.drivers` — wordline decoder/driver with
  multi-level voltage sources and input latch (block A).
* :mod:`repro.crossbar.pair` — differential positive/negative crossbar
  pair with the analog subtraction unit of the column multiplexer
  (block B).
* :mod:`repro.crossbar.sense` — the Po-bit reconfigurable sense
  amplifier with counter and precision-control register/adder
  (block C).
* :mod:`repro.crossbar.functional_units` — sigmoid, ReLU, and 4:1
  max-pooling units (blocks B/C).
* :mod:`repro.crossbar.engine` — the composed matrix-vector-multiply
  engine that sequences drivers, arrays, subtraction, SA, and the
  precision adder into one signed digital MVM.
"""

from repro.crossbar.array import CrossbarArray
from repro.crossbar.drivers import WordlineDriver
from repro.crossbar.pair import DifferentialPair
from repro.crossbar.sense import ReconfigurableSenseAmp
from repro.crossbar.functional_units import (
    SigmoidUnit,
    ReLUUnit,
    MaxPool4Unit,
)
from repro.crossbar.engine import CrossbarMVMEngine

__all__ = [
    "CrossbarArray",
    "WordlineDriver",
    "DifferentialPair",
    "ReconfigurableSenseAmp",
    "SigmoidUnit",
    "ReLUUnit",
    "MaxPool4Unit",
    "CrossbarMVMEngine",
]
