"""Neural-network layers with forward and backward passes.

Data layout conventions:

* dense activations: ``(batch, features)``
* image activations: ``(batch, height, width, channels)``

Each layer caches what its backward pass needs during ``forward`` and
exposes ``params()``/``grads()`` pairs for the SGD optimiser.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.nn.initializers import he_normal, xavier_uniform


class Layer:
    """Base layer: forward, backward, and parameter access."""

    trainable = False

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for input ``x``."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Given dL/d(output), cache parameter grads, return dL/d(input)."""
        raise NotImplementedError

    def params(self) -> list[np.ndarray]:
        """Mutable parameter arrays (same objects every call)."""
        return []

    def grads(self) -> list[np.ndarray]:
        """Gradients matching :meth:`params` order."""
        return []

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape (without batch) this layer produces from ``input_shape``."""
        raise NotImplementedError


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    trainable = True

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        init: str = "xavier",
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise WorkloadError("dense dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        if init == "xavier":
            self.weight = xavier_uniform(
                (in_features, out_features), in_features, out_features, rng
            )
        elif init == "he":
            self.weight = he_normal(
                (in_features, out_features), in_features, rng
            )
        else:
            raise WorkloadError(f"unknown init {init!r}")
        self.bias = np.zeros(out_features)
        self._x: np.ndarray | None = None
        self.d_weight = np.zeros_like(self.weight)
        self.d_bias = np.zeros_like(self.bias)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._x = x
        return x @ self.weight + self.bias

    def forward_with(
        self, x: np.ndarray, weight: np.ndarray, bias: np.ndarray
    ) -> np.ndarray:
        """Forward pass with explicit parameters.

        Pure: the layer's own weights and backward caches are
        untouched, so quantised/perturbed evaluations can share one
        layer object across threads and processes.
        """
        return x @ weight + bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise WorkloadError("backward before forward(training=True)")
        self.d_weight[...] = self._x.T @ grad
        self.d_bias[...] = grad.sum(axis=0)
        return grad @ self.weight.T

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        return [self.d_weight, self.d_bias]

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if input_shape != (self.weight.shape[0],):
            raise WorkloadError(
                f"dense expects {(self.weight.shape[0],)}, got {input_shape}"
            )
        return (self.weight.shape[1],)


def _im2col(
    x: np.ndarray, kernel: int, stride: int
) -> tuple[np.ndarray, int, int]:
    """(B, H, W, C) → (B, OH, OW, K*K*C) patch matrix."""
    b, h, w, c = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    shape = (b, oh, ow, kernel, kernel, c)
    strides = (
        x.strides[0],
        x.strides[1] * stride,
        x.strides[2] * stride,
        x.strides[1],
        x.strides[2],
        x.strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    return patches.reshape(b, oh, ow, kernel * kernel * c), oh, ow


class Conv2D(Layer):
    """Valid-padding 2-D convolution (cross-correlation), stride 1.

    Weights have shape ``(K*K*Cin, Cout)`` — exactly the matrix PRIME
    programs into crossbars for convolution layers (§III-E).
    """

    trainable = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        rng: np.random.Generator | None = None,
        pad: int = 0,
    ) -> None:
        if kernel < 1 or in_channels < 1 or out_channels < 1:
            raise WorkloadError("conv dimensions must be positive")
        if pad < 0:
            raise WorkloadError("padding must be non-negative")
        rng = rng if rng is not None else np.random.default_rng(0)
        fan_in = kernel * kernel * in_channels
        self.kernel = kernel
        self.pad = pad
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.weight = he_normal((fan_in, out_channels), fan_in, rng)
        self.bias = np.zeros(out_channels)
        self.d_weight = np.zeros_like(self.weight)
        self.d_bias = np.zeros_like(self.bias)
        self._cols: np.ndarray | None = None
        self._in_shape: tuple[int, ...] | None = None

    def _columns(self, x: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
        """Validate, pad, and im2col ``x``; returns (cols, padded shape)."""
        if x.ndim != 4 or x.shape[3] != self.in_channels:
            raise WorkloadError(
                f"conv expects (B, H, W, {self.in_channels}), got {x.shape}"
            )
        if self.pad:
            p = self.pad
            x = np.pad(x, ((0, 0), (p, p), (p, p), (0, 0)))
        cols, _, _ = _im2col(x, self.kernel, stride=1)
        return cols, x.shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        cols, padded_shape = self._columns(x)
        out = cols @ self.weight + self.bias
        if training:
            self._cols = cols
            self._in_shape = padded_shape
        return out

    def forward_with(
        self, x: np.ndarray, weight: np.ndarray, bias: np.ndarray
    ) -> np.ndarray:
        """Forward pass with explicit parameters (pure, no caching)."""
        cols, _ = self._columns(x)
        return cols @ weight + bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cols is None or self._in_shape is None:
            raise WorkloadError("backward before forward(training=True)")
        b, oh, ow, _ = grad.shape
        flat_grad = grad.reshape(-1, self.out_channels)
        flat_cols = self._cols.reshape(-1, self.weight.shape[0])
        self.d_weight[...] = flat_cols.T @ flat_grad
        self.d_bias[...] = flat_grad.sum(axis=0)
        # dL/dx: scatter the column gradients back onto the image.
        d_cols = (flat_grad @ self.weight.T).reshape(
            b, oh, ow, self.kernel, self.kernel, self.in_channels
        )
        dx = np.zeros(self._in_shape)
        for i in range(self.kernel):
            for j in range(self.kernel):
                dx[:, i : i + oh, j : j + ow, :] += d_cols[:, :, :, i, j, :]
        if self.pad:
            p = self.pad
            dx = dx[:, p:-p, p:-p, :]
        return dx

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        return [self.d_weight, self.d_bias]

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        h, w, c = input_shape
        if c != self.in_channels:
            raise WorkloadError(
                f"conv expects {self.in_channels} channels, got {c}"
            )
        return (
            h + 2 * self.pad - self.kernel + 1,
            w + 2 * self.pad - self.kernel + 1,
            self.out_channels,
        )


class MaxPool2D(Layer):
    """Non-overlapping max pooling (window = stride)."""

    def __init__(self, size: int = 2) -> None:
        if size < 1:
            raise WorkloadError("pool size must be positive")
        self.size = size
        self._mask: np.ndarray | None = None
        self._in_shape: tuple[int, ...] | None = None

    def _tile(self, x: np.ndarray) -> np.ndarray:
        b, h, w, c = x.shape
        s = self.size
        if h % s or w % s:
            raise WorkloadError(
                f"pool size {s} does not divide spatial dims {(h, w)}"
            )
        return x.reshape(b, h // s, s, w // s, s, c)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        tiles = self._tile(x)
        out = tiles.max(axis=(2, 4))
        if training:
            expanded = np.repeat(
                np.repeat(out, self.size, axis=1), self.size, axis=2
            )
            self._mask = x == expanded
            self._in_shape = x.shape
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None or self._in_shape is None:
            raise WorkloadError("backward before forward(training=True)")
        expanded = np.repeat(
            np.repeat(grad, self.size, axis=1), self.size, axis=2
        )
        # Split gradient across ties so the pass stays exact on plateaus.
        tiles = self._tile(self._mask.astype(np.float64))
        counts = tiles.sum(axis=(2, 4))
        counts = np.repeat(
            np.repeat(counts, self.size, axis=1), self.size, axis=2
        )
        return expanded * self._mask / np.maximum(counts, 1.0)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        h, w, c = input_shape
        if h % self.size or w % self.size:
            raise WorkloadError(
                f"pool size {self.size} does not divide {(h, w)}"
            )
        return (h // self.size, w // self.size, c)


class MeanPool2D(Layer):
    """Non-overlapping mean pooling — implementable as a crossbar dot
    product with weights 1/n (§III-E)."""

    def __init__(self, size: int = 2) -> None:
        if size < 1:
            raise WorkloadError("pool size must be positive")
        self.size = size
        self._in_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        b, h, w, c = x.shape
        s = self.size
        if h % s or w % s:
            raise WorkloadError(
                f"pool size {s} does not divide spatial dims {(h, w)}"
            )
        if training:
            self._in_shape = x.shape
        return x.reshape(b, h // s, s, w // s, s, c).mean(axis=(2, 4))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise WorkloadError("backward before forward(training=True)")
        expanded = np.repeat(
            np.repeat(grad, self.size, axis=1), self.size, axis=2
        )
        return expanded / (self.size * self.size)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        h, w, c = input_shape
        if h % self.size or w % self.size:
            raise WorkloadError(
                f"pool size {self.size} does not divide {(h, w)}"
            )
        return (h // self.size, w // self.size, c)


class Flatten(Layer):
    """Collapse spatial dimensions to a feature vector."""

    def __init__(self) -> None:
        self._in_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise WorkloadError("backward before forward(training=True)")
        return grad.reshape(self._in_shape)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        size = 1
        for d in input_shape:
            size *= d
        return (size,)


class Sigmoid(Layer):
    """Logistic activation — PRIME's analog sigmoid unit."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y = 1.0 / (1.0 + np.exp(-x))
        if training:
            self._y = y
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise WorkloadError("backward before forward(training=True)")
        return grad * self._y * (1.0 - self._y)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class ReLU(Layer):
    """Rectifier — PRIME's sign-bit ReLU unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise WorkloadError("backward before forward(training=True)")
        return grad * self._mask

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class Softmax(Layer):
    """Softmax over the last axis (inference-time classifier head).

    Training uses the fused softmax+cross-entropy in
    :mod:`repro.nn.losses`; this layer's backward is the full Jacobian
    product for completeness.
    """

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        y = e / e.sum(axis=-1, keepdims=True)
        if training:
            self._y = y
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise WorkloadError("backward before forward(training=True)")
        dot = (grad * self._y).sum(axis=-1, keepdims=True)
        return self._y * (grad - dot)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape
