"""The input-and-synapse composing scheme (Section III-D).

The practical technology assumption is that wordline drivers produce
only 3-bit input voltages and MLC cells store only 4-bit weights, while
applications want 6-bit inputs, 8-bit weights, and 6-bit outputs.  The
composing scheme splits every input into HIGH/LOW 3-bit halves (driven
in two sequential phases) and every weight into HIGH/LOW 4-bit halves
(stored in adjacent bitlines), then rebuilds the Po-bit target result
from the partial products:

    R_full = 2^((Pin+Pw)/2) R_HH + 2^(Pw/2) R_HL
           + 2^(Pin/2) R_LH + R_LL                      (Eq. 8)

    R_target = R_full >> (Pin + Pw + P_N - Po)           (Eq. 3)

Each partial product is itself sensed at limited precision — the
reconfigurable SA keeps only the top bits of each part:

    R_HH → top Po bits,  R_HL → top Po - Pin/2 bits,
    R_LH → top Po - Pw/2 bits,  R_LL → top Po - (Pin+Pw)/2 bits

With the default Pin=6, Pw=8, Po=6 the LL part keeps a negative number
of bits and is skipped entirely, so a composed MVM needs three analog
phases (HH, HL, LH).
"""

from __future__ import annotations

from dataclasses import dataclass
import math

import numpy as np

from repro.errors import PrecisionError


def _ceil_log2(n: int) -> int:
    """Smallest k with 2**k >= n (and >= 0)."""
    if n <= 1:
        return 0
    return int(math.ceil(math.log2(n)))


def truncate_to_top_bits(
    values: np.ndarray, full_bits: int, keep_bits: int
) -> np.ndarray:
    """Keep the ``keep_bits`` most significant of ``full_bits``-wide ints.

    Models the reconfigurable SA sensing an analog quantity whose full
    scale is ``2**full_bits`` with only ``keep_bits`` of precision.
    ``keep_bits <= 0`` yields all zeros (the part is skipped).
    """
    if full_bits < 1:
        raise PrecisionError("full_bits must be >= 1")
    values = np.asarray(values)
    if keep_bits <= 0:
        return np.zeros_like(values)
    keep_bits = min(keep_bits, full_bits)
    shift = full_bits - keep_bits
    return values >> shift


def split_unsigned(values: np.ndarray, bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Split unsigned ``bits``-wide integers into (high, low) halves.

    ``bits`` must be even; each half is ``bits // 2`` wide.
    """
    if bits < 2 or bits % 2 != 0:
        raise PrecisionError("composed width must be even and >= 2")
    values = np.asarray(values)
    if np.any(values < 0) or np.any(values >= (1 << bits)):
        raise PrecisionError(f"values outside unsigned {bits}-bit range")
    half = bits // 2
    mask = (1 << half) - 1
    return values >> half, values & mask


def compose_unsigned(
    high: np.ndarray, low: np.ndarray, bits: int
) -> np.ndarray:
    """Inverse of :func:`split_unsigned`."""
    if bits < 2 or bits % 2 != 0:
        raise PrecisionError("composed width must be even and >= 2")
    half = bits // 2
    high = np.asarray(high)
    low = np.asarray(low)
    limit = 1 << half
    if np.any(high < 0) or np.any(high >= limit):
        raise PrecisionError(f"high halves outside unsigned {half}-bit range")
    if np.any(low < 0) or np.any(low >= limit):
        raise PrecisionError(f"low halves outside unsigned {half}-bit range")
    return (high << half) | low


@dataclass(frozen=True)
class ComposingSpec:
    """Bit-width bookkeeping for one composed dot product.

    Attributes
    ----------
    pin:
        Composed input precision (Pin); each analog phase drives
        ``pin // 2`` bits.
    pw:
        Composed weight precision (Pw); each bitline stores
        ``pw // 2`` bits.
    po:
        Output precision of the reconfigurable SA (Po).
    pn:
        log2 of the number of wordlines summed by the array
        (P_N; 2**pn inputs per crossbar).
    """

    pin: int = 6
    pw: int = 8
    po: int = 6
    pn: int = 8

    def __post_init__(self) -> None:
        if self.pin < 2 or self.pin % 2 != 0:
            raise PrecisionError("pin must be even and >= 2")
        if self.pw < 2 or self.pw % 2 != 0:
            raise PrecisionError("pw must be even and >= 2")
        if self.po < 1:
            raise PrecisionError("po must be >= 1")
        if self.pn < 0:
            raise PrecisionError("pn must be >= 0")

    @classmethod
    def for_rows(cls, rows: int, pin: int = 6, pw: int = 8, po: int = 6) -> "ComposingSpec":
        """Spec for a crossbar with ``rows`` wordlines."""
        return cls(pin=pin, pw=pw, po=po, pn=_ceil_log2(rows))

    @property
    def full_bits(self) -> int:
        """Bit width of the exact dot-product result (Eq. 2)."""
        return self.pin + self.pw + self.pn

    @property
    def part_full_bits(self) -> int:
        """Bit width of one exact partial product (HH/HL/LH/LL)."""
        return self.pin // 2 + self.pw // 2 + self.pn

    @property
    def target_shift(self) -> int:
        """Right shift from full precision to the Po-bit target (Eq. 3)."""
        return self.full_bits - self.po

    def part_keep_bits(self) -> dict[str, int]:
        """SA precision (top bits kept) for each partial product."""
        return {
            "HH": self.po,
            "HL": self.po - self.pin // 2,
            "LH": self.po - self.pw // 2,
            "LL": self.po - (self.pin + self.pw) // 2,
        }

    def active_phases(self) -> list[str]:
        """Partial products that contribute at least one output bit."""
        return [name for name, k in self.part_keep_bits().items() if k > 0]

    def part_alignment_shift(self) -> dict[str, int]:
        """Left shift aligning each truncated part into the target sum.

        Derivation: part X carries weight 2**w_X in Eq. 8 (w_HH =
        (Pin+Pw)/2, w_HL = Pw/2, w_LH = Pin/2, w_LL = 0).  After the SA
        keeps the top k_X bits of a ``part_full_bits``-wide value, the
        kept integer equals ``R_X >> (part_full_bits - k_X)``, so its
        contribution to ``R_target = R_full >> target_shift`` is

            R_X_kept << (w_X - target_shift + part_full_bits - k_X)

        which is 0 for every active part under the default widths —
        i.e. the adder simply accumulates the kept integers.
        """
        weights = {
            "HH": (self.pin + self.pw) // 2,
            "HL": self.pw // 2,
            "LH": self.pin // 2,
            "LL": 0,
        }
        out: dict[str, int] = {}
        for name, keep in self.part_keep_bits().items():
            if keep <= 0:
                continue
            keep = min(keep, self.part_full_bits)
            out[name] = (
                weights[name]
                - self.target_shift
                + self.part_full_bits
                - keep
            )
        return out


def reference_dot(
    inputs: np.ndarray, weights: np.ndarray, spec: ComposingSpec
) -> np.ndarray:
    """Exact Po-bit target result (Eq. 3): full dot product, then shift.

    ``inputs`` is (rows,) unsigned Pin-bit; ``weights`` is (rows, cols)
    unsigned Pw-bit.  Returns (cols,) integers in [0, 2**po).
    """
    inputs = np.asarray(inputs, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    _check_ranges(inputs, weights, spec)
    full = inputs @ weights
    return full >> spec.target_shift


def composed_dot(
    inputs: np.ndarray, weights: np.ndarray, spec: ComposingSpec
) -> np.ndarray:
    """Hardware-faithful composed dot product (Eq. 4-9).

    Splits inputs and weights into halves, evaluates each active
    partial product at the SA's truncated precision, aligns, and
    accumulates — exactly the sequence PRIME's precision-control
    register/adder performs.  Returns (cols,) integers.
    """
    inputs = np.asarray(inputs, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    _check_ranges(inputs, weights, spec)
    in_hi, in_lo = split_unsigned(inputs, spec.pin)
    w_hi, w_lo = split_unsigned(weights, spec.pw)
    parts = {
        "HH": (in_hi, w_hi),
        "HL": (in_lo, w_hi),
        "LH": (in_hi, w_lo),
        "LL": (in_lo, w_lo),
    }
    keep = spec.part_keep_bits()
    align = spec.part_alignment_shift()
    total = np.zeros(weights.shape[1], dtype=np.int64)
    for name in spec.active_phases():
        vec, mat = parts[name]
        part_full = vec @ mat
        kept = truncate_to_top_bits(
            part_full, spec.part_full_bits, keep[name]
        )
        shift = align[name]
        if shift >= 0:
            total = total + (kept << shift)
        else:
            total = total + (kept >> (-shift))
    return total


def composing_error_bound(spec: ComposingSpec) -> int:
    """Worst-case absolute error of the composed vs reference result.

    Each active part truncates away ``part_full_bits - keep`` low bits
    before alignment, and the skipped parts drop their entire
    contribution; the bound sums those losses in target-LSB units.
    """
    keep = spec.part_keep_bits()
    weights = {
        "HH": (spec.pin + spec.pw) // 2,
        "HL": spec.pw // 2,
        "LH": spec.pin // 2,
        "LL": 0,
    }
    bound = 0.0
    for name, k in keep.items():
        contribution_shift = weights[name] - spec.target_shift
        if k > 0:
            lost_bits = spec.part_full_bits - min(k, spec.part_full_bits)
            bound += (2.0 ** lost_bits - 1) * 2.0 ** contribution_shift
        else:
            bound += (2.0 ** spec.part_full_bits - 1) * (
                2.0 ** contribution_shift
            )
    return int(math.ceil(bound)) + 1


def _check_ranges(
    inputs: np.ndarray, weights: np.ndarray, spec: ComposingSpec
) -> None:
    if inputs.ndim != 1:
        raise PrecisionError("inputs must be a vector")
    if weights.ndim != 2 or weights.shape[0] != inputs.shape[0]:
        raise PrecisionError("weights must be (rows, cols) with matching rows")
    if inputs.shape[0] > (1 << spec.pn):
        raise PrecisionError(
            f"{inputs.shape[0]} rows exceed the spec's 2**pn = {1 << spec.pn}"
        )
    if np.any(inputs < 0) or np.any(inputs >= (1 << spec.pin)):
        raise PrecisionError(f"inputs outside unsigned {spec.pin}-bit range")
    if np.any(weights < 0) or np.any(weights >= (1 << spec.pw)):
        raise PrecisionError(f"weights outside unsigned {spec.pw}-bit range")
