"""SNN on PRIME: the paper's future-work extension, working.

Converts a trained digit MLP to a rate-coded spiking network and runs
it on simulated crossbars.  Spikes are binary, so every timestep is a
single-level wordline drive — no input composing, which is exactly why
ReRAM is attractive for SNNs (§II-B: "ReRAM can also implement SNN.
Making PRIME to support SNN is our future work.").

Run:  python examples/snn_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import parse_topology, synthetic_mnist
from repro.nn.snn import SpikingNetwork


def main() -> None:
    print("== train the ANN off-line ==")
    x, y = synthetic_mnist(4400, flat=True, seed=42)
    x_train, y_train = x[:4000], y[:4000]
    x_test, y_test = x[4000:], y[4000:]
    topology = parse_topology("snn-base", "784-64-10")
    net = topology.build(
        rng=np.random.default_rng(5), hidden_activation="relu"
    )
    net.train_sgd(
        x_train, y_train, epochs=15, batch_size=32, learning_rate=0.1,
        rng=np.random.default_rng(6),
    )
    ann_acc = net.accuracy(x_test, y_test)
    print(f"ANN accuracy: {ann_acc:.3f}")

    print("\n== convert to a rate-coded SNN ==")
    snn = SpikingNetwork.from_ann(net, x_train[:500])
    print(
        f"{len(snn.layers)} spiking layers with "
        f"{[l.weight.shape for l in snn.layers]} synapse matrices"
    )

    print("\n== latency/accuracy trade-off (digital synapses) ==")
    for timesteps in (8, 32, 128):
        acc = snn.accuracy(
            x_test[:200], y_test[:200], timesteps=timesteps,
            rng=np.random.default_rng(7),
        )
        print(f"T={timesteps:4d}: accuracy {acc:.3f}")

    print("\n== the same SNN on crossbar synapses ==")
    snn.program_crossbars(rng=np.random.default_rng(8))
    acc = snn.accuracy(
        x_test[:200], y_test[:200], timesteps=128,
        rng=np.random.default_rng(7), backend="crossbar",
    )
    print(
        f"crossbar backend (8-bit composed weights, binary spikes): "
        f"{acc:.3f}"
    )
    result = snn.run(
        x_test[:5], timesteps=64, rng=np.random.default_rng(9),
        backend="crossbar",
    )
    print("output spike counts of 5 samples:")
    for counts, label in zip(result.spike_counts, y_test[:5]):
        print(f"  true {label}: {counts.tolist()}")


if __name__ == "__main__":
    main()
