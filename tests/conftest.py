"""Shared fixtures for the PRIME reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.datasets import synthetic_mnist
from repro.nn.topology import parse_topology
from repro.params.crossbar import CrossbarParams


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_xbar() -> CrossbarParams:
    """A 32×32 crossbar for fast functional tests."""
    return CrossbarParams(rows=32, cols=32, sense_amps=8)


@pytest.fixture(scope="session")
def tiny_digit_data() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """A synthetic digit dataset shared across tests."""
    x, y = synthetic_mnist(4400, flat=True, seed=42)
    return x[:4000], y[:4000], x[4000:], y[4000:]


@pytest.fixture(scope="session")
def trained_tiny_mlp(tiny_digit_data):
    """A trained 784-64-10 MLP (ReLU hidden layer) on digits."""
    x_train, y_train, x_test, y_test = tiny_digit_data
    topology = parse_topology("tiny-mlp", "784-64-10")
    net = topology.build(
        rng=np.random.default_rng(5), hidden_activation="relu"
    )
    net.train_sgd(
        x_train,
        y_train,
        epochs=15,
        batch_size=32,
        learning_rate=0.1,
        rng=np.random.default_rng(6),
        val_x=x_test,
        val_labels=y_test,
    )
    return topology, net


@pytest.fixture(scope="session")
def trained_tiny_cnn():
    """A trained small CNN (conv3x4-pool-...-10) on 2-D digits."""
    x, y = synthetic_mnist(1600, seed=43)
    x_train, y_train = x[:1200], y[:1200]
    x_test, y_test = x[1200:], y[1200:]
    topology = parse_topology(
        "tiny-cnn", "conv3x4-pool-676-32-10", input_shape=(28, 28, 1)
    )
    net = topology.build(rng=np.random.default_rng(7))
    net.train_sgd(
        x_train,
        y_train,
        epochs=6,
        batch_size=32,
        learning_rate=0.05,
        rng=np.random.default_rng(8),
        val_x=x_test,
        val_labels=y_test,
    )
    return topology, net, x_test, y_test
