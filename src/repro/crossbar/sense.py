"""Reconfigurable sense amplifier (Fig. 4 C).

The SA digitises a count-domain analog value with a precision
configurable from 1 bit up to ``Po`` bits (a fabricated design from
Li et al., IMW'11).  A counter steps the reference level; the result
lands in the output register.  The precision-control circuit (register
+ adder) accumulates multiple truncated conversions so low-precision
cells can realise a high-precision weight — the digital half of the
composing scheme.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CrossbarError
from repro.params.crossbar import CrossbarParams, DEFAULT_CROSSBAR


class ReconfigurableSenseAmp:
    """A bank of Po-bit reconfigurable SAs for one mat."""

    def __init__(self, params: CrossbarParams = DEFAULT_CROSSBAR) -> None:
        self.params = params
        self._precision = params.output_bits
        self.conversions = 0  # lifetime conversion count (for energy)

    @property
    def precision(self) -> int:
        """Currently configured precision in bits."""
        return self._precision

    def configure_precision(self, bits: int) -> None:
        """Set conversion precision to any value in [1, Po]."""
        if not 1 <= bits <= self.params.output_bits:
            raise CrossbarError(
                f"SA precision must be in [1, {self.params.output_bits}], "
                f"got {bits}"
            )
        self._precision = bits

    def convert(
        self, counts: np.ndarray, full_scale_bits: int
    ) -> np.ndarray:
        """Digitise count-domain values, keeping the top ``precision`` bits.

        ``full_scale_bits`` is the bit width of the analog full-scale
        window (``part_full_bits`` of the composing spec).  Values are
        clipped into the window; negative inputs (from the analog
        subtraction unit) are digitised by magnitude with the sign bit
        restored, matching a differential SA front end.
        """
        if full_scale_bits < 1:
            raise CrossbarError("full_scale_bits must be >= 1")
        counts = np.asarray(counts, dtype=np.float64)
        sign = np.sign(counts)
        magnitude = np.abs(counts)
        full_scale = float(1 << full_scale_bits)
        magnitude = np.clip(magnitude, 0.0, full_scale - 1.0)
        shift = full_scale_bits - min(self._precision, full_scale_bits)
        quantum = float(1 << shift)
        digital = np.floor(magnitude / quantum).astype(np.int64)
        self.conversions += counts.size
        return (sign.astype(np.int64)) * digital

    def conversion_latency(self, columns: int) -> float:
        """Time to convert ``columns`` bitlines with the SA bank."""
        batches = -(-columns // self.params.sense_amps)  # ceil division
        return batches * self.params.t_sa

    def conversion_energy(self, columns: int) -> float:
        """Energy to convert ``columns`` bitlines once."""
        return columns * self.params.e_sa_conversion


class PrecisionAccumulator:
    """The precision-control register + adder next to the SA.

    Accumulates aligned partial conversions:  ``add(value, shift)``
    adds ``value << shift`` (or ``value >> -shift``) to the register.
    """

    def __init__(self, width: int) -> None:
        if width < 1:
            raise CrossbarError("accumulator width must be >= 1")
        self.width = width
        self._register: np.ndarray | None = None

    def reset(self, columns: int) -> None:
        """Clear the register for a new output vector."""
        self._register = np.zeros(columns, dtype=np.int64)

    def add(self, values: np.ndarray, shift: int) -> None:
        """Accumulate one aligned partial conversion."""
        if self._register is None:
            raise CrossbarError("accumulator used before reset")
        values = np.asarray(values, dtype=np.int64)
        if values.shape != self._register.shape:
            raise CrossbarError("partial width mismatch")
        if shift >= 0:
            self._register += values << shift
        else:
            self._register += values >> (-shift)

    @property
    def value(self) -> np.ndarray:
        """Current register contents (copy)."""
        if self._register is None:
            raise CrossbarError("accumulator used before reset")
        return self._register.copy()
