"""Yield study: how stuck-at faults and wire resistance hit accuracy.

Fabricated crossbars ship with stuck-at-HRS/LRS cells and finite wire
resistance.  This example sweeps both non-idealities on a trained
classifier running through the functional crossbar pipeline — the
reliability analysis a PRIME adopter would run before choosing array
sizes and redundancy.

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

import numpy as np

from repro import parse_topology, synthetic_mnist
from repro.core.compiler import PrimeCompiler
from repro.core.executor import PrimeExecutor
from repro.crossbar.engine import CrossbarMVMEngine
from repro.crossbar.pair import DifferentialPair
from repro.device.faults import FaultMap
from repro.device.irdrop import worst_case_attenuation
from repro.eval.reporting import render_table
from repro.params.crossbar import CrossbarParams
from repro.params.reram import PT_TIO2_DEVICE


def train_reference():
    x, y = synthetic_mnist(4400, flat=True, seed=42)
    topology = parse_topology("fault-mlp", "784-64-10")
    net = topology.build(
        rng=np.random.default_rng(5), hidden_activation="relu"
    )
    net.train_sgd(
        x[:4000], y[:4000], epochs=15, batch_size=32, learning_rate=0.1,
        rng=np.random.default_rng(6),
    )
    return topology, net, x[4000:], y[4000:]


def faulty_accuracy(topology, net, x, y, fault_rate, seed=0):
    """Accuracy with stuck-at faults injected into every engine."""
    params = CrossbarParams()
    compiler = PrimeCompiler()
    executor = PrimeExecutor()
    plan = compiler.compile(topology)
    quantized = executor.quantize_layer_matrices(net, plan)
    rng = np.random.default_rng(seed)
    programmed = []
    for mapping, (w_int, w_fmt) in zip(plan.weight_layers, quantized):
        tiles = [
            [None] * mapping.col_blocks for _ in range(mapping.row_blocks)
        ]
        for rb, cb, tile in executor.iter_tiles(mapping, w_int):
            engine = CrossbarMVMEngine(params)
            faults = tuple(
                FaultMap.random(
                    params.rows,
                    params.cols,
                    rate_hrs=fault_rate / 2,
                    rate_lrs=fault_rate / 2,
                    rng=rng,
                )
                for _ in range(2)
            )
            engine.pair = DifferentialPair(params, fault_maps=faults)
            engine.program(tile)
            tiles[rb][cb] = engine
        programmed.append((tiles, w_fmt))
    out = executor.run_functional(net, plan, x, programmed=programmed)
    return float(np.mean(np.argmax(out, axis=1) == y))


def main() -> None:
    topology, net, x_test, y_test = train_reference()
    x_eval, y_eval = x_test[:200], y_test[:200]
    float_acc = net.accuracy(x_eval, y_eval)
    print(f"float accuracy: {float_acc:.3f}\n")

    rows = []
    for rate in (0.0, 0.005, 0.02, 0.05, 0.10):
        acc = faulty_accuracy(topology, net, x_eval, y_eval, rate)
        rows.append([f"{rate:.1%}", f"{acc:.3f}"])
    print(
        render_table(
            "stuck-at fault sweep (half HRS, half LRS)",
            ["fault rate", "accuracy"],
            rows,
        )
    )

    print()
    rows = []
    for r_wire in (0.5, 1.0, 2.0, 5.0):
        loss = worst_case_attenuation(
            PT_TIO2_DEVICE.g_on, 256, 256, r_wire
        )
        rows.append([f"{r_wire:.1f} ohm", f"{loss:.1%}"])
    print(
        render_table(
            "worst-case IR-drop current loss (256x256 mat)",
            ["wire R per cell", "corner-cell loss"],
            rows,
        )
    )
    print(
        "\ntakeaway: even sub-percent stuck-cell rates visibly cost "
        "accuracy — motivating the write-verify, remapping, and "
        "compensation schemes the paper cites — and wire resistance "
        "bounds practical array sizes."
    )


if __name__ == "__main__":
    main()
