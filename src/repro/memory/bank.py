"""One ReRAM bank: Mem subarrays + 2 FF subarrays + 1 Buffer subarray.

The bank is PRIME's unit of acceleration — the FF subarrays of one bank
form one in-memory NPU, and the 64 banks of the system work as 64 NPUs
in parallel (§IV-B2).  The bank models the two independent data paths
of Fig. 3(c)/§III-B:

* Mem subarray ↔ global row buffer ↔ off-chip, over the global data
  lines (GDL) — used by the CPU and by ``fetch``/``commit``;
* Buffer subarray ↔ FF subarrays over the private data port — used by
  ``load``/``store`` and free of GDL contention, so FF computation
  runs in parallel with CPU memory traffic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryError_
from repro.params.prime import PrimeConfig, DEFAULT_PRIME_CONFIG
from repro.memory.metering import CostCategory, CostMeter
from repro.memory.subarray import (
    BufferSubarray,
    FFSubarray,
    MemSubarray,
)


class Bank:
    """A bank with PRIME's three subarray roles and cost accounting."""

    def __init__(
        self,
        config: PrimeConfig = DEFAULT_PRIME_CONFIG,
        rng: np.random.Generator | None = None,
        meter: CostMeter | None = None,
    ) -> None:
        self.config = config
        org = config.organization
        self.meter = meter if meter is not None else CostMeter()
        n_mem = (
            org.subarrays_per_bank
            - org.ff_subarrays_per_bank
            - org.buffer_subarrays_per_bank
        )
        if n_mem < 1:
            raise MemoryError_("bank needs at least one Mem subarray")
        self.mem_subarrays = [
            MemSubarray(org.mats_per_subarray, config.crossbar)
            for _ in range(n_mem)
        ]
        self.ff_subarrays = [
            FFSubarray(org.mats_per_subarray, config.crossbar, rng=rng)
            for _ in range(org.ff_subarrays_per_bank)
        ]
        self.buffer = BufferSubarray(org.mats_per_subarray, config.crossbar)

    # -- geometry -------------------------------------------------------

    @property
    def mem_capacity_bytes(self) -> int:
        """Bytes addressable in the Mem subarrays."""
        return sum(s.capacity_bytes for s in self.mem_subarrays)

    @property
    def ff_mats(self) -> list:
        """All mats of the bank's FF subarrays, in order."""
        return [m for sub in self.ff_subarrays for m in sub.mats]

    def _locate(self, offset: int) -> tuple[MemSubarray, int]:
        if offset < 0 or offset >= self.mem_capacity_bytes:
            raise MemoryError_(
                f"offset {offset} outside bank of "
                f"{self.mem_capacity_bytes} bytes"
            )
        per = self.mem_subarrays[0].capacity_bytes
        return self.mem_subarrays[offset // per], offset % per

    # -- Mem subarray access over the GDL ----------------------------------

    def _row_ops(self, size: int) -> int:
        rows = -(-size // self.config.organization.row_buffer_bytes)
        return max(rows, 1)

    def mem_read(self, offset: int, size: int) -> np.ndarray:
        """Read bytes from the Mem subarrays (charges MEMORY)."""
        out = np.empty(size, dtype=np.uint8)
        done = 0
        while done < size:
            sub, local = self._locate(offset + done)
            chunk = min(size - done, sub.capacity_bytes - local)
            out[done : done + chunk] = sub.read(local, chunk)
            done += chunk
        org = self.config.organization
        self.meter.charge(
            CostCategory.MEMORY,
            time_s=self._row_ops(size) * self.config.timing.row_read_latency,
            energy_j=size
            * (org.e_array_read_per_byte + org.e_gdl_per_byte),
        )
        return out

    def mem_write(self, offset: int, data: np.ndarray) -> None:
        """Write bytes to the Mem subarrays (charges MEMORY)."""
        data = np.asarray(data, dtype=np.uint8)
        done = 0
        while done < data.size:
            sub, local = self._locate(offset + done)
            chunk = min(data.size - done, sub.capacity_bytes - local)
            sub.write(local, data[done : done + chunk])
            done += chunk
        org = self.config.organization
        self.meter.charge(
            CostCategory.MEMORY,
            time_s=self._row_ops(data.size)
            * self.config.timing.row_write_latency,
            energy_j=data.size
            * (org.e_array_write_per_byte + org.e_gdl_per_byte),
        )

    # -- Table I data-flow primitives ----------------------------------------

    def fetch(self, mem_offset: int, buf_offset: int, size: int) -> None:
        """``fetch [mem adr] to [buf adr]``: Mem → row buffer → Buffer.

        The two hops serialise on the GDL (§III-B), so the charge is a
        read plus a write over the same resource.
        """
        data = self.mem_read(mem_offset, size)
        org = self.config.organization
        self.buffer.write(buf_offset, data)
        self.meter.charge(
            CostCategory.MEMORY,
            time_s=self._row_ops(size)
            * self.config.timing.row_write_latency,
            energy_j=size
            * (org.e_array_write_per_byte + org.e_gdl_per_byte),
        )

    def commit(self, buf_offset: int, mem_offset: int, size: int) -> None:
        """``commit [buf adr] to [mem adr]``: Buffer → row buffer → Mem."""
        org = self.config.organization
        data = self.buffer.read(buf_offset, size)
        self.meter.charge(
            CostCategory.MEMORY,
            time_s=self._row_ops(size)
            * self.config.timing.row_read_latency,
            energy_j=size
            * (org.e_array_read_per_byte + org.e_gdl_per_byte),
        )
        self.mem_write(mem_offset, data)

    def load(self, buf_offset: int, size: int, hidden: bool = True) -> np.ndarray:
        """``load [buf adr] to [FF adr]``: Buffer → FF over the private port.

        Buffer traffic overlaps FF computation (double buffering), so it
        is charged as *hidden* time by default.
        """
        data = self.buffer.read(buf_offset, size)
        self._charge_buffer_port(size, hidden)
        return data

    def store(
        self, data: np.ndarray, buf_offset: int, hidden: bool = True
    ) -> None:
        """``store [FF adr] to [buf adr]``: FF → Buffer over the private port."""
        data = np.asarray(data, dtype=np.uint8)
        self.buffer.write(buf_offset, data)
        self._charge_buffer_port(data.size, hidden)

    def _charge_buffer_port(self, size: int, hidden: bool) -> None:
        org = self.config.organization
        self.meter.charge(
            CostCategory.BUFFER,
            time_s=self.config.t_buffer_access
            + size / self.config.buffer_port_bandwidth,
            energy_j=size
            * (org.e_buffer_port_per_byte + org.e_array_read_per_byte),
            hidden=hidden,
        )
