"""Tests for mixed-signal in-situ training."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.insitu import InSituTrainer
from repro.nn.layers import Conv2D, Dense, ReLU, Sigmoid
from repro.nn.network import Sequential
from repro.params.crossbar import CrossbarParams


def blob_task(rng, n=240, d=16, classes=3):
    """Linearly separable Gaussian blobs."""
    centers = rng.standard_normal((classes, d)) * 4.0
    labels = rng.integers(0, classes, n)
    x = centers[labels] + rng.standard_normal((n, d))
    # in-situ inputs are non-negative, normalised voltage codes
    x = np.clip(x - x.min(), 0.0, None)
    return x / x.max(), labels


@pytest.fixture
def task(rng):
    return blob_task(rng)


def small_net(d=16, hidden=12, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Dense(d, hidden, rng=rng, init="he"),
            ReLU(),
            Dense(hidden, classes, rng=rng),
        ]
    )


class TestConstruction:
    def test_wraps_dense_relu_stack(self):
        trainer = InSituTrainer(small_net())
        assert len(trainer.layers) == 2
        assert isinstance(trainer.layers[0].activation, ReLU)
        assert trainer.layers[1].activation is None

    def test_sigmoid_supported(self):
        rng = np.random.default_rng(0)
        net = Sequential(
            [Dense(8, 4, rng=rng), Sigmoid(), Dense(4, 2, rng=rng)]
        )
        trainer = InSituTrainer(net)
        assert isinstance(trainer.layers[0].activation, Sigmoid)

    def test_conv_rejected(self):
        rng = np.random.default_rng(0)
        net = Sequential([Conv2D(1, 2, 3, rng=rng)])
        with pytest.raises(ExecutionError):
            InSituTrainer(net)

    def test_oversized_layer_rejected(self):
        rng = np.random.default_rng(0)
        net = Sequential([Dense(300, 10, rng=rng)])  # 301 rows > 256
        with pytest.raises(ExecutionError):
            InSituTrainer(net)

    def test_bad_interval(self):
        with pytest.raises(ExecutionError):
            InSituTrainer(small_net(), reprogram_interval=0)


class TestTraining:
    def test_learns_separable_task(self, task):
        x, y = task
        trainer = InSituTrainer(
            small_net(), rng=np.random.default_rng(1)
        )
        before = trainer.accuracy(x, y)
        result = trainer.train(
            x,
            y,
            epochs=4,
            batch_size=24,
            learning_rate=0.1,
            rng=np.random.default_rng(2),
        )
        after = result.accuracies[-1]
        assert after > before
        assert after > 0.8
        assert result.losses[-1] < result.losses[0]

    def test_write_accounting(self, task):
        x, y = task
        trainer = InSituTrainer(small_net())
        result = trainer.train(x, y, epochs=2, learning_rate=0.1)
        assert result.total_cell_writes > 0
        assert result.write_energy_j > 0
        assert len(result.cell_writes) == 2

    def test_sparse_reprogramming_writes_fewer_cells(self, task):
        # Tiny learning rate → most levels never change → few writes.
        x, y = task
        hot = InSituTrainer(small_net()).train(
            x, y, epochs=1, learning_rate=0.1
        )
        cold = InSituTrainer(small_net()).train(
            x, y, epochs=1, learning_rate=1e-6
        )
        assert cold.total_cell_writes < hot.total_cell_writes

    def test_reprogram_interval_trades_writes(self, task):
        x, y = task
        frequent = InSituTrainer(
            small_net(), reprogram_interval=1
        ).train(x, y, epochs=1, learning_rate=0.1)
        rare = InSituTrainer(
            small_net(), reprogram_interval=8
        ).train(x, y, epochs=1, learning_rate=0.1)
        assert rare.total_cell_writes <= frequent.total_cell_writes

    def test_endurance_headroom_is_astronomical(self, task):
        x, y = task
        trainer = InSituTrainer(small_net())
        trainer.train(x, y, epochs=1, learning_rate=0.1)
        # §II-A: 1e12 endurance makes wear a non-issue
        assert trainer.endurance_headroom() > 1e9

    def test_training_with_device_variation(self, task):
        x, y = task
        trainer = InSituTrainer(
            small_net(), rng=np.random.default_rng(7)
        )
        result = trainer.train(
            x,
            y,
            epochs=4,
            learning_rate=0.1,
            rng=np.random.default_rng(8),
        )
        # learning around the hardware still converges
        assert result.accuracies[-1] > 0.75
