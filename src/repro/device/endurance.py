"""Per-cell endurance (wear) accounting.

ReRAM endurance is reported up to 1e12 SET/RESET cycles, which makes
wear a far smaller concern than for PCM, but PRIME reprograms FF mats
each time a new network is deployed and morphs subarrays between modes,
so the library still tracks write counts and can report remaining
lifetime.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceError


class EnduranceTracker:
    """Counts programming events per cell against an endurance budget."""

    def __init__(self, rows: int, cols: int, endurance: float) -> None:
        if rows < 1 or cols < 1:
            raise DeviceError("tracker dimensions must be positive")
        if endurance <= 0:
            raise DeviceError("endurance must be positive")
        self.endurance = float(endurance)
        self._writes = np.zeros((rows, cols), dtype=np.int64)

    def record_writes(self, mask: np.ndarray) -> None:
        """Record one programming event for every True cell in ``mask``."""
        if mask.shape != self._writes.shape:
            raise DeviceError("mask shape mismatch")
        self._writes[mask] += 1

    @property
    def write_counts(self) -> np.ndarray:
        """Per-cell write counts (copy)."""
        return self._writes.copy()

    @property
    def max_writes(self) -> int:
        """The most-worn cell's write count."""
        return int(self._writes.max())

    @property
    def total_writes(self) -> int:
        """Total programming events recorded."""
        return int(self._writes.sum())

    def wear_fraction(self) -> float:
        """Worst-case consumed lifetime fraction, in [0, 1+]."""
        return self.max_writes / self.endurance

    def exhausted_cells(self) -> int:
        """Number of cells past the endurance budget."""
        return int((self._writes >= self.endurance).sum())

    def remaining_reprogram_cycles(self, writes_per_cycle: int = 1) -> float:
        """Full-array reprogramming cycles left for the worst cell."""
        if writes_per_cycle < 1:
            raise DeviceError("writes_per_cycle must be >= 1")
        left = self.endurance - self.max_writes
        return max(left, 0.0) / writes_per_cycle
