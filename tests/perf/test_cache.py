"""Tests for the content-addressed artifact cache."""

import numpy as np
import pytest

from repro import telemetry
from repro.perf import cache as perf_cache
from repro.perf.cache import (
    ArtifactCache,
    code_fingerprint,
    mapping_plan,
    reference_network,
    reference_network_key,
    stable_key,
)

#: Cheap training configuration shared by the round-trip tests.
TRAIN_KW = dict(workload="MLP-S", n_train=300, n_test=60, epochs=1, seed=11)


@pytest.fixture
def cache(tmp_path) -> ArtifactCache:
    return ArtifactCache(tmp_path / "cache")


@pytest.fixture
def metrics():
    """An enabled telemetry session, restored to disabled afterwards."""
    session = telemetry.enable()
    yield session
    telemetry.disable()


class TestKeying:
    def test_stable_key_deterministic_and_order_insensitive(self):
        a = stable_key({"x": 1, "y": "two"})
        b = stable_key({"y": "two", "x": 1})
        assert a == b
        assert a == stable_key({"x": 1, "y": "two"})

    def test_stable_key_distinguishes_payloads(self):
        assert stable_key({"x": 1}) != stable_key({"x": 2})

    def test_code_fingerprint_depends_on_module_set(self):
        one = code_fingerprint("repro.nn.network")
        two = code_fingerprint("repro.nn.network", "repro.nn.layers")
        assert one == code_fingerprint("repro.nn.network")
        assert one != two

    def test_every_key_component_moves_the_entry(self, cache):
        base = reference_network_key("MLP-S", 300, 60, 1, 11)
        variants = [
            reference_network_key("MLP-M", 300, 60, 1, 11),
            reference_network_key("MLP-S", 301, 60, 1, 11),
            reference_network_key("MLP-S", 300, 61, 1, 11),
            reference_network_key("MLP-S", 300, 60, 2, 11),
            reference_network_key("MLP-S", 300, 60, 1, 12),
        ]
        dirs = {
            cache.entry_dir("reference_network", key)
            for key in [base, *variants]
        }
        assert len(dirs) == len(variants) + 1


class TestReferenceNetworkRoundTrip:
    def test_miss_trains_then_hit_reloads_identically(
        self, cache, metrics
    ):
        net1, x1, y1 = reference_network(cache=cache, **TRAIN_KW)
        assert (
            telemetry.counter_value(
                "perf.cache.miss", kind="reference_network"
            )
            == 1
        )
        net2, x2, y2 = reference_network(cache=cache, **TRAIN_KW)
        assert (
            telemetry.counter_value(
                "perf.cache.hit", kind="reference_network"
            )
            == 1
        )
        assert net1.weights_fingerprint() == net2.weights_fingerprint()
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_changed_seed_misses_again(self, cache, metrics):
        reference_network(cache=cache, **TRAIN_KW)
        other = dict(TRAIN_KW, seed=TRAIN_KW["seed"] + 1)
        net_a, _, _ = reference_network(cache=cache, **other)
        assert (
            telemetry.counter_value(
                "perf.cache.miss", kind="reference_network"
            )
            == 2
        )
        net_b, _, _ = reference_network(cache=cache, **TRAIN_KW)
        assert net_a.weights_fingerprint() != net_b.weights_fingerprint()

    def test_corrupt_entry_is_evicted_and_retrained(self, cache):
        net1, _, _ = reference_network(cache=cache, **TRAIN_KW)
        key = reference_network_key(
            TRAIN_KW["workload"],
            TRAIN_KW["n_train"],
            TRAIN_KW["n_test"],
            TRAIN_KW["epochs"],
            TRAIN_KW["seed"],
        )
        entry = cache.entry_dir("reference_network", key)
        (entry / "weights.npz").write_bytes(b"not an npz")
        net2, _, _ = reference_network(cache=cache, **TRAIN_KW)
        assert net1.weights_fingerprint() == net2.weights_fingerprint()
        # the rebuilt entry serves hits again
        net3, _, _ = reference_network(cache=cache, **TRAIN_KW)
        assert net3.weights_fingerprint() == net1.weights_fingerprint()

    def test_truncated_entry_recovers_and_counts(self, cache, metrics):
        """A partially-written payload must never propagate the load
        error: the entry is evicted, the artifact retrained, and the
        corruption surfaces as the ``perf.cache.corrupt`` counter."""
        net1, x1, _ = reference_network(cache=cache, **TRAIN_KW)
        key = reference_network_key(
            TRAIN_KW["workload"],
            TRAIN_KW["n_train"],
            TRAIN_KW["n_test"],
            TRAIN_KW["epochs"],
            TRAIN_KW["seed"],
        )
        entry = cache.entry_dir("reference_network", key)
        payload = (entry / "weights.npz").read_bytes()
        (entry / "weights.npz").write_bytes(payload[: len(payload) // 2])
        net2, x2, _ = reference_network(cache=cache, **TRAIN_KW)
        assert net1.weights_fingerprint() == net2.weights_fingerprint()
        np.testing.assert_array_equal(x1, x2)
        assert telemetry.counter_total("perf.cache.corrupt") == 1
        # The rebuilt entry is whole again: hits without new corruption.
        reference_network(cache=cache, **TRAIN_KW)
        assert telemetry.counter_total("perf.cache.corrupt") == 1

    def test_disable_bypasses_storage(self, cache):
        perf_cache.disable()
        try:
            assert not perf_cache.active()
            reference_network(cache=cache, **TRAIN_KW)
            assert not list(cache.root.rglob("meta.json"))
        finally:
            perf_cache.enable()
        assert perf_cache.active()


class TestMappingPlanRoundTrip:
    def test_round_trip_is_equal(self, cache, metrics):
        plan1 = mapping_plan("MLP-S", cache=cache)
        plan2 = mapping_plan("MLP-S", cache=cache)
        assert (
            telemetry.counter_value("perf.cache.hit", kind="mapping_plan")
            == 1
        )
        assert plan2 == plan1

    def test_truncated_plan_recovers_and_counts(self, cache, metrics):
        plan1 = mapping_plan("MLP-S", cache=cache)
        entry_dir = next(cache.root.glob("mapping_plan/*/*"))
        pkl = entry_dir / "plan.pkl"
        pkl.write_bytes(pkl.read_bytes()[:16])
        plan2 = mapping_plan("MLP-S", cache=cache)
        assert plan2 == plan1
        assert (
            telemetry.counter_value(
                "perf.cache.corrupt",
                kind="mapping_plan",
                error="UnpicklingError",
            )
            == 1
        )

    def test_workloads_do_not_collide(self, cache):
        plan_s = mapping_plan("MLP-S", cache=cache)
        plan_m = mapping_plan("MLP-M", cache=cache)
        assert plan_s.workload == "MLP-S"
        assert plan_m.workload == "MLP-M"
        assert mapping_plan("MLP-S", cache=cache) == plan_s
