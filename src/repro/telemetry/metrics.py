"""Counter / gauge / histogram registry for the telemetry layer.

Metrics are identified by a name plus an optional set of string labels
(e.g. ``model.energy_nj{system=PRIME, stage=compute}``).  The registry
is a plain in-process accumulator: no background threads, no sampling,
no dependencies — reading it is always consistent with the last write.

Naming convention (see README "Observability" for the glossary):
suffix ``_ns`` for model/wall times in nanoseconds, ``_nj`` for energy
in nanojoules, bare names for event counts and ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _label_key(labels: dict[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing accumulator."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0

    def add(self, value: float = 1.0) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += value


@dataclass
class Gauge:
    """A last-value-wins measurement."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Count/sum/min/max summary of observed values."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create store of every metric recorded this session."""

    def __init__(self) -> None:
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, labels: dict[str, object]):
        key = (cls.__name__, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(
                name=name, labels={k: str(v) for k, v in labels.items()}
            )
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- read side ------------------------------------------------------

    def counters(self) -> list[Counter]:
        return [m for m in self._metrics.values() if isinstance(m, Counter)]

    def gauges(self) -> list[Gauge]:
        return [m for m in self._metrics.values() if isinstance(m, Gauge)]

    def histograms(self) -> list[Histogram]:
        return [
            m for m in self._metrics.values() if isinstance(m, Histogram)
        ]

    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of one counter (0.0 if never written)."""
        key = ("Counter", name, _label_key(labels))
        metric = self._metrics.get(key)
        return metric.value if metric is not None else 0.0

    def counter_total(self, name: str) -> float:
        """Sum of one counter name across every label set."""
        return sum(c.value for c in self.counters() if c.name == name)

    def gauge_value(self, name: str, **labels: object) -> float | None:
        key = ("Gauge", name, _label_key(labels))
        metric = self._metrics.get(key)
        return metric.value if metric is not None else None

    def snapshot(self) -> dict:
        """Flat JSON-serialisable dump of every metric."""
        return {
            "counters": [
                {"name": c.name, "labels": c.labels, "value": c.value}
                for c in self.counters()
            ],
            "gauges": [
                {"name": g.name, "labels": g.labels, "value": g.value}
                for g in self.gauges()
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": h.labels,
                    "count": h.count,
                    "sum": h.total,
                    "min": h.minimum if h.count else None,
                    "max": h.maximum if h.count else None,
                    "mean": h.mean,
                }
                for h in self.histograms()
            ],
        }
