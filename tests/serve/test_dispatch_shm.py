"""Shared-memory payload dispatch: bit-identity, fallback, lifecycle.

The contract under test: process-mode serving over shared-memory slabs
is *bit-identical* to pickled dispatch (``PRIME_SHM=0``) and to the
serial oracle — including after resilience tile remaps — and every
degraded situation (slab exhaustion, oversized payloads, invalid knob
values) falls back to pickling that batch with a
``serve.dispatch.shm_fallback`` counter instead of failing.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import telemetry
from repro.nn.topology import parse_topology
from repro.params.crossbar import CrossbarParams
from repro.params.memory import MemoryOrganization
from repro.params.prime import PrimeConfig
from repro.params.reram import PT_TIO2_DEVICE
from repro.resilience import ResiliencePolicy
from repro.serve import ServeConfig, ServingRuntime, program_state
from repro.serve.dispatcher import (
    ProcessDispatcher,
    ShmRef,
    _SlabPool,
    shm_enabled,
)

pytestmark = pytest.mark.serve

NOISE_FREE = dataclasses.replace(
    PT_TIO2_DEVICE, programming_sigma=0.0, read_noise_sigma=0.0
)
SMALL_ORG = MemoryOrganization(
    subarrays_per_bank=8,
    mats_per_subarray=16,
    mat_rows=32,
    mat_cols=32,
)
TOPOLOGY = parse_topology("serve-tiny", "24-20-6")


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    yield
    telemetry.disable()


def _small_config(
    policy: ResiliencePolicy | None = None,
    device=NOISE_FREE,
    **xbar,
) -> PrimeConfig:
    kw = dict(rows=32, cols=32, sense_amps=8, device=device)
    kw.update(xbar)
    return PrimeConfig(
        crossbar=CrossbarParams(**kw),
        organization=SMALL_ORG,
        resilience=policy or ResiliencePolicy(),
    )


@pytest.fixture(scope="module")
def network():
    return TOPOLOGY.build(rng=np.random.default_rng(2))


@pytest.fixture(scope="module")
def samples():
    return np.random.default_rng(11).standard_normal((20, 24))


def _runtime(network, samples, **kw):
    serve_kw = dict(mode="process", max_batch=5)
    serve_kw.update(kw.pop("serve", {}))
    defaults = dict(
        config=_small_config(),
        serve_config=ServeConfig(**serve_kw),
        calibration=samples,
        max_replicas=2,
    )
    defaults.update(kw)
    return ServingRuntime(network, TOPOLOGY, **defaults)


class TestShmKnob:
    def test_default_enabled(self):
        assert shm_enabled()

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv("PRIME_SHM", "0")
        assert not shm_enabled()

    def test_invalid_value_warns_and_keeps_default(self, monkeypatch):
        monkeypatch.setenv("PRIME_SHM", "maybe")
        session = telemetry.enable(fresh=True)
        assert shm_enabled()
        assert (
            session.metrics.counter_value(
                "perf.env.invalid", knob="PRIME_SHM"
            )
            == 1
        )


class TestShmBitIdentity:
    def test_shm_vs_pickle_vs_serial(
        self, network, samples, monkeypatch
    ):
        """All three transports agree bit-for-bit; the shm run really
        used the slabs."""
        telemetry.enable(fresh=True)
        with _runtime(network, samples) as runtime:
            shm_out = runtime.serve(samples)
            reference = runtime.reference(samples)
            assert runtime.dispatcher._slabs is not None
        assert telemetry.counter_total("serve.dispatch.shm_batches") >= 4
        assert telemetry.counter_total("serve.dispatch.shm_fallback") == 0
        telemetry.disable()

        monkeypatch.setenv("PRIME_SHM", "0")
        telemetry.enable(fresh=True)
        with _runtime(network, samples) as runtime:
            pickled_out = runtime.serve(samples)
            assert runtime.dispatcher._slabs is None
        assert telemetry.counter_total("serve.dispatch.shm_batches") == 0
        monkeypatch.delenv("PRIME_SHM")

        with _runtime(
            network, samples, serve=dict(mode="serial")
        ) as runtime:
            serial_out = runtime.serve(samples)

        np.testing.assert_array_equal(shm_out, reference)
        np.testing.assert_array_equal(shm_out, pickled_out)
        np.testing.assert_array_equal(shm_out, serial_out)

    def test_shm_after_tile_remap_matches_reference(
        self, network, samples
    ):
        """Faulty arrays force tile remaps during programming; the
        slab transport must not disturb the per-engine fallback the
        remapped tiles take."""
        policy = ResiliencePolicy(
            verify_writes=True,
            spare_columns=0,
            spare_pairs_per_bank=3,
            column_error_limit=100.0,
            mask_error_limit=100.0,
        )
        config = _small_config(
            policy, fault_rate_hrs=0.05, fault_rate_lrs=0.05
        )
        telemetry.enable(fresh=True)
        with _runtime(
            network, samples, config=config, serve=dict(seed=3)
        ) as runtime:
            executor, _ = program_state(runtime.spec)
            summary = executor.last_degradation
            assert summary is not None and summary.remapped_tiles >= 1
            assert runtime.dispatcher._slabs is not None
            served = runtime.serve(samples)
            reference = runtime.reference(samples)
        assert telemetry.counter_total("serve.dispatch.shm_batches") >= 1
        np.testing.assert_array_equal(served, reference)


class TestSlabPool:
    def test_stage_view_roundtrip(self):
        pool = _SlabPool(replicas=1, slots=2, in_bytes=800, out_bytes=800)
        try:
            batch = np.arange(100, dtype=np.float64).reshape(4, 25)
            key = pool.acquire()
            ref, slot = pool.stage(key, batch)
            assert isinstance(ref, ShmRef)
            np.testing.assert_array_equal(pool.view(ref), batch)
            pool.release(*key)
        finally:
            pool.close()

    def test_exhaustion_returns_none_then_recycles(self):
        pool = _SlabPool(replicas=2, slots=2, in_bytes=80, out_bytes=80)
        try:
            keys = [pool.acquire() for _ in range(4)]
            assert all(k is not None for k in keys)
            assert pool.acquire() is None
            pool.release(*keys[0])
            assert pool.acquire() is not None
        finally:
            pool.close()


class TestDispatchFallbacks:
    @pytest.fixture(scope="class")
    def shm_runtime(self, network, samples):
        telemetry.disable()
        with _runtime(network, samples) as runtime:
            if runtime.dispatcher._slabs is None:
                pytest.skip("no shared-memory support here")
            yield runtime

    def _dispatcher(self, shm_runtime) -> ProcessDispatcher:
        d = shm_runtime.dispatcher
        assert isinstance(d, ProcessDispatcher)
        return d

    def test_slab_exhaustion_falls_back_to_pickle(
        self, shm_runtime, samples
    ):
        """More unresolved dispatches than slots: the excess pickles
        (counted), every result still bit-identical."""
        d = self._dispatcher(shm_runtime)
        limit = d.inflight_limit
        assert limit is not None
        session = telemetry.enable(fresh=True)
        batch = np.ascontiguousarray(samples[:2])
        futures = [d.dispatch(batch, None) for _ in range(limit + 3)]
        assert (
            session.metrics.counter_value(
                "serve.dispatch.shm_fallback", reason="slots"
            )
            == 3
        )
        values = [f.result(timeout=300.0).value for f in futures]
        for value in values[1:]:
            np.testing.assert_array_equal(value, values[0])
        # Slots recycled: the next dispatch goes through shm again.
        before = session.metrics.counter_total(
            "serve.dispatch.shm_batches"
        )
        d.dispatch(batch, None).result(timeout=300.0)
        assert (
            session.metrics.counter_total("serve.dispatch.shm_batches")
            == before + 1
        )

    def test_oversized_batch_falls_back_to_pickle(
        self, shm_runtime, samples
    ):
        d = self._dispatcher(shm_runtime)
        rows = d._slabs.in_bytes // (24 * 8) + 1
        big = np.ascontiguousarray(
            np.repeat(samples[:1], rows, axis=0)
        )
        assert big.nbytes > d._slabs.in_bytes
        session = telemetry.enable(fresh=True)
        envelope = d.dispatch(big, None).result(timeout=300.0)
        assert envelope.value.shape[0] == rows
        assert (
            session.metrics.counter_value(
                "serve.dispatch.shm_fallback", reason="size"
            )
            == 1
        )

    def test_runtime_backpressure_keeps_batches_on_shm(
        self, network, samples
    ):
        """A bulk serve() of many more micro-batches than slots must
        not overflow into pickling — the runtime resolves oldest
        futures first."""
        telemetry.enable(fresh=True)
        with _runtime(
            network, samples, serve=dict(mode="process", max_batch=2)
        ) as runtime:
            limit = runtime.dispatcher.inflight_limit
            out = runtime.serve(samples)  # 10 micro-batches of 2
            reference = runtime.reference(samples)
        assert limit is not None and limit < 10
        assert telemetry.counter_total("serve.dispatch.shm_batches") == 10
        assert telemetry.counter_total("serve.dispatch.shm_fallback") == 0
        np.testing.assert_array_equal(out, reference)
