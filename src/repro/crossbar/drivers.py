"""Wordline decoder/driver with multi-level voltage sources (Fig. 4 A).

In computation mode every wordline must be driven simultaneously with
one of ``2**input_bits`` analog voltage levels.  The driver latches the
digital input vector, selects the voltage-source combination per line,
and drives the array through per-line current amplifiers.  In memory
mode it falls back to the two-level read/write voltages.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CrossbarError
from repro.params.crossbar import CrossbarParams, DEFAULT_CROSSBAR


class WordlineDriver:
    """Latched multi-level wordline driver for one mat."""

    def __init__(self, params: CrossbarParams = DEFAULT_CROSSBAR) -> None:
        self.params = params
        self._latch = np.zeros(params.rows, dtype=np.int64)
        self.compute_mode = False

    @property
    def latch(self) -> np.ndarray:
        """Currently latched DAC codes (copy)."""
        return self._latch.copy()

    def set_compute_mode(self, enabled: bool) -> None:
        """Switch the voltage multiplexer between memory and compute."""
        self.compute_mode = enabled
        if not enabled:
            self._latch[:] = 0

    def latch_inputs(self, codes: np.ndarray) -> None:
        """Latch a vector of DAC codes, one per wordline.

        Codes must fit the driver's level count; shorter vectors are
        zero-extended (unused rows are driven to 0 V so they do not
        contribute current).
        """
        if not self.compute_mode:
            raise CrossbarError("latch_inputs requires compute mode")
        codes = np.asarray(codes)
        if codes.ndim != 1:
            raise CrossbarError("input codes must be a vector")
        if codes.shape[0] > self.params.rows:
            raise CrossbarError(
                f"{codes.shape[0]} codes exceed {self.params.rows} wordlines"
            )
        if np.any(codes < 0) or np.any(codes >= self.params.input_levels):
            raise CrossbarError(
                f"codes outside [0, {self.params.input_levels})"
            )
        self._latch[:] = 0
        self._latch[: codes.shape[0]] = codes.astype(np.int64)

    def quantize_inputs(self, values: np.ndarray) -> np.ndarray:
        """Real values in [0, 1] → DAC codes.

        The driver's DAC is linear over [0, v_read]; inputs are expected
        pre-normalised by the dynamic fixed-point pipeline.
        """
        values = np.asarray(values, dtype=np.float64)
        if np.any(values < -1e-9) or np.any(values > 1.0 + 1e-9):
            raise CrossbarError("driver inputs must be normalised to [0, 1]")
        top = self.params.input_levels - 1
        return np.clip(np.rint(values * top), 0, top).astype(np.int64)

    def drive_energy(self, active_rows: int | None = None) -> float:
        """Energy of one drive event (joules)."""
        rows = self.params.rows if active_rows is None else active_rows
        return rows * self.params.e_driver_per_row
