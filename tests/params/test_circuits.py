"""Tests for the circuit-level area model and the §V-D trade-off."""

import pytest

from repro.errors import ConfigurationError
from repro.params.circuits import (
    CircuitAreas,
    DEFAULT_CIRCUIT_AREAS,
    peak_gops_per_bank,
    sweep_ff_subarrays,
)


class TestCircuitAreas:
    def test_fig12_fractions_emerge_from_components(self):
        fractions = DEFAULT_CIRCUIT_AREAS.overhead_fractions()
        assert fractions["driver"] == pytest.approx(0.23, abs=0.005)
        assert fractions["subtraction+sigmoid"] == pytest.approx(
            0.29, abs=0.005
        )
        assert fractions["control/mux/etc"] == pytest.approx(
            0.08, abs=0.005
        )

    def test_ff_mat_overhead_60_percent(self):
        assert DEFAULT_CIRCUIT_AREAS.ff_mat_overhead == pytest.approx(
            0.60, abs=0.005
        )

    def test_ff_mat_equals_memory_plus_additions(self):
        a = DEFAULT_CIRCUIT_AREAS
        assert a.ff_mat == pytest.approx(
            a.memory_mat + a.prime_additions
        )

    def test_positive_areas_required(self):
        with pytest.raises(ConfigurationError):
            CircuitAreas(cell_array=0.0)


class TestPeakGops:
    def test_scales_linearly_with_subarrays(self):
        one = peak_gops_per_bank(1)
        four = peak_gops_per_bank(4)
        assert four == pytest.approx(4 * one)

    def test_paper_configuration_is_crossbar_class(self):
        # 2 FF subarrays: hundreds of GOPS to tens of TOPS per bank —
        # the in-memory compute density argument.
        gops = peak_gops_per_bank(2)
        assert 1_000 < gops < 100_000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            peak_gops_per_bank(0)


class TestTradeoffSweep:
    def test_default_sweep(self):
        points = sweep_ff_subarrays()
        assert [p.ff_subarrays_per_bank for p in points] == [1, 2, 4, 8, 16]

    def test_gops_and_overhead_both_grow(self):
        points = sweep_ff_subarrays()
        gops = [p.peak_gops for p in points]
        overheads = [p.area_overhead for p in points]
        assert gops == sorted(gops)
        assert overheads == sorted(overheads)

    def test_paper_point_matches_5_76(self):
        points = sweep_ff_subarrays()
        paper = next(p for p in points if p.ff_subarrays_per_bank == 2)
        assert paper.area_overhead == pytest.approx(0.0576, abs=0.001)

    def test_diminishing_efficiency(self):
        # GOPS-per-overhead keeps improving as the fixed cost
        # amortises, but with visibly diminishing returns per doubling.
        points = sweep_ff_subarrays()
        eff = [p.gops_per_overhead for p in points]
        gain_early = eff[1] / eff[0]
        gain_late = eff[-1] / eff[-2]
        assert gain_late < gain_early

    def test_too_many_ff_subarrays_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_ff_subarrays(counts=(64,))
