"""Process-mode chaos: real worker kills, hangs, drift, recovery.

The fault-injection suite (``-m chaos``): a seeded :class:`FaultPlan`
kills, hangs, and drifts *real* pool workers, and the cluster must
recover — respawn the replica, re-dispatch the batch bit-identically,
return every shared-memory slot, and never lose an admitted request
silently.  Everything here is deterministic in the plan and the
traffic; wall-clock only enters through deliberately short deadlines.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time

import numpy as np
import pytest

from repro import telemetry
from repro.nn.topology import parse_topology
from repro.params.crossbar import CrossbarParams
from repro.params.memory import MemoryOrganization
from repro.params.prime import PrimeConfig
from repro.params.reram import PT_TIO2_DEVICE
from repro.resilience import ResiliencePolicy
from repro.serve import ServeConfig, ServingRuntime
from repro.serve import dispatcher as dispatcher_mod
from repro.serve.dispatcher import ProcessDispatcher, _SlabPool
from repro.serve.health import FaultEvent, FaultPlan, HealthPolicy

pytestmark = [pytest.mark.serve, pytest.mark.chaos]

NOISE_FREE = dataclasses.replace(
    PT_TIO2_DEVICE, programming_sigma=0.0, read_noise_sigma=0.0
)
SMALL_ORG = MemoryOrganization(
    subarrays_per_bank=8,
    mats_per_subarray=16,
    mat_rows=32,
    mat_cols=32,
)
TOPOLOGY = parse_topology("serve-tiny", "24-20-6")

#: Zero backoff keeps recovery instant; the deadline is generous for
#: everything except the hang tests, which shorten it deliberately.
FAST = dict(backoff_base_s=0.0)


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    yield
    telemetry.disable()


def _small_config(device=NOISE_FREE) -> PrimeConfig:
    return PrimeConfig(
        crossbar=CrossbarParams(
            rows=32, cols=32, sense_amps=8, device=device
        ),
        organization=SMALL_ORG,
        resilience=ResiliencePolicy(),
    )


@pytest.fixture(scope="module")
def network():
    return TOPOLOGY.build(rng=np.random.default_rng(2))


@pytest.fixture(scope="module")
def samples():
    return np.random.default_rng(11).standard_normal((20, 24))


def _runtime(network, samples, **kw):
    serve_kw = dict(mode="process", max_batch=5)
    serve_kw.update(kw.pop("serve", {}))
    defaults = dict(
        config=_small_config(),
        serve_config=ServeConfig(**serve_kw),
        calibration=samples,
        max_replicas=2,
        health=HealthPolicy(**FAST),
    )
    defaults.update(kw)
    return ServingRuntime(network, TOPOLOGY, **defaults)


def _held_slots(runtime) -> int:
    slabs = runtime.dispatcher._slabs
    return 0 if slabs is None else slabs.held_slots


class TestKillRecovery:
    def test_worker_kill_recovers_bit_identical(
        self, network, samples
    ):
        """A worker dies mid-run (real ``os._exit``): the replica is
        respawned, the batch re-dispatched, results bit-identical, and
        every slab slot comes back."""
        telemetry.enable()
        plan = FaultPlan.of(FaultEvent(batch_index=1, kind="kill"))
        with _runtime(network, samples, fault_plan=plan) as runtime:
            assert runtime.mode == "process"
            served = runtime.serve(samples)
            reference = runtime.reference(samples)
            assert plan.remaining == 0
            assert len(runtime.restarts) == 1
            event = runtime.restarts[0]
            assert event.reason == "crash"
            assert event.replica == 1  # round-robin: batch 1 -> replica 1
            # Restart cost is real: kill + fork + one-time programming.
            assert event.cost_s > 0.0
            # Slab accounting returns to full — no leaked slots.
            assert _held_slots(runtime) == 0
            # The respawned worker serves again (replica back in
            # rotation, not retired).
            assert runtime.monitor.routable() == [0, 1]
        np.testing.assert_array_equal(served, reference)
        # The restart was measured as a span and counted.
        names = [r.name for r in telemetry.session().tracer.spans]
        assert "serve.replica.restart" in names
        assert (
            telemetry.counter_value(
                "serve.replica.restarts",
                reason="crash",
                tenant=runtime.tenant,
            )
            == 1
        )
        # Two batches were inflight on the killed pool (pump pipelines
        # batches 1 and 3 onto replica 1 before collecting): both
        # re-dispatch, but the epoch guard allows only ONE restart.
        assert (
            telemetry.counter_value(
                "serve.dispatch.retry",
                reason="crash",
                tenant=runtime.tenant,
            )
            == 2
        )

    def test_pipelined_kill_under_poll(self, network, samples):
        """The open-loop path: poll() with a killed worker mid-stream
        must drain everything without deadlock or silent loss."""
        plan = FaultPlan.of(FaultEvent(batch_index=0, kind="kill"))
        with _runtime(
            network,
            samples,
            fault_plan=plan,
            health=HealthPolicy(batch_timeout_s=60.0, **FAST),
        ) as runtime:
            requests = [runtime.submit(x) for x in samples]
            # poll() never blocks; pace the loop so the workers (and
            # the respawn) get wall-clock to make progress.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                runtime.poll(flush=True)
                if all(r.done for r in requests):
                    break
                time.sleep(0.01)
            assert all(r.done for r in requests)
            assert len(runtime.restarts) == 1
            assert _held_slots(runtime) == 0
            served = np.stack([r.result for r in requests])
            reference = runtime.reference(samples)
        np.testing.assert_array_equal(served, reference)


class TestHangTimeout:
    def test_hung_worker_times_out_and_recovers(
        self, network, samples
    ):
        """A worker sleeping through its batch trips the per-batch
        deadline: the hung worker is SIGKILLed, the batch re-dispatched,
        and — the slot-leak regression — the slab pool's accounting
        returns to full even though the timed-out future never
        resolved."""
        plan = FaultPlan.of(
            FaultEvent(batch_index=0, kind="hang", duration_s=60.0)
        )
        health = HealthPolicy(batch_timeout_s=1.0, **FAST)
        with _runtime(
            network, samples, fault_plan=plan, health=health
        ) as runtime:
            served = runtime.serve(samples)
            reference = runtime.reference(samples)
            assert len(runtime.restarts) == 1
            assert runtime.restarts[0].reason == "timeout"
            assert _held_slots(runtime) == 0
        np.testing.assert_array_equal(served, reference)


class TestDriftRecovery:
    def test_drifted_worker_reprogrammed_in_background(
        self, network, samples
    ):
        """Drift injected into one pool worker's arrays: the periodic
        probe sees it, background reprogramming restores it, later
        probes read ~zero drift."""
        plan = FaultPlan.of(
            FaultEvent(
                batch_index=0, kind="drift", magnitude=0.5, seed=3
            )
        )
        health = HealthPolicy(
            probe_interval_batches=2, drift_threshold=0.01, **FAST
        )
        with _runtime(
            network, samples, fault_plan=plan, health=health
        ) as runtime:
            assert runtime.spec.probe_reference
            runtime.serve(samples)
            assert len(runtime.reprograms) == 1
            event = runtime.reprograms[0]
            assert event.replica == 0  # batch 0 -> replica 0
            assert event.drift > health.drift_threshold
            assert event.cost_s > 0.0
            # The recovered worker answers a fresh probe with ~zero.
            probe = runtime.dispatcher.probe_replica(0)
            assert probe.result(60.0) == pytest.approx(0.0, abs=1e-12)
            # The undrifted replica was never reprogrammed.
            assert [e.replica for e in runtime.reprograms] == [0]
            # Recovered replica serves bit-identically again.
            tail = runtime.serve(samples)
            reference = runtime.reference(samples)
        np.testing.assert_array_equal(tail, reference)


class TestSpawnFailureRecovery:
    def test_grow_after_failed_grow(
        self, network, samples, monkeypatch
    ):
        """A failed scale-up (no pool can spawn) must leave the
        dispatcher and the bank grant exactly as they were, and a later
        grow must succeed cleanly."""
        original = dispatcher_mod.ProcessPoolExecutor

        def explode(*a, **kw):
            raise OSError("no fork for you")

        with _runtime(
            network, samples, max_replicas=1
        ) as runtime:
            assert runtime.replicas == 1
            free_before = len(runtime.scheduler.free_banks)
            monkeypatch.setattr(
                dispatcher_mod, "ProcessPoolExecutor", explode
            )
            with pytest.raises(OSError):
                runtime.scale_to(2)
            # Nothing half-granted: replica count, pools, pids, slabs,
            # and the free-bank pool are all untouched.
            assert runtime.replicas == 1
            d = runtime.dispatcher
            assert len(d._pools) == len(d._pids) == 1
            if d._slabs is not None:
                assert len(d._slabs.slabs) == 1
            assert len(runtime.scheduler.free_banks) == free_before
            # Retry with the environment healthy again.
            monkeypatch.setattr(
                dispatcher_mod, "ProcessPoolExecutor", original
            )
            cost = runtime.scale_to(2)
            assert cost > 0.0
            assert runtime.replicas == 2
            assert len(d._pools) == len(d._pids) == 2
            served = runtime.serve(samples)
            reference = runtime.reference(samples)
        np.testing.assert_array_equal(served, reference)


class TestCloseSafety:
    def test_dispatcher_double_close(self, network, samples):
        with _runtime(network, samples) as runtime:
            runtime.serve(samples[:5])
        d = runtime.dispatcher
        assert isinstance(d, ProcessDispatcher)
        d.close()  # runtime.close() already closed it; idempotent
        assert d._slabs is None and d._pools == []

    def test_runtime_close_after_worker_crash_releases_banks(
        self, network, samples
    ):
        """Workers killed out-of-band (no recovery ran): close() must
        still tear the pools down and hand the bank grant back."""
        runtime = _runtime(network, samples)
        scheduler = runtime.scheduler
        free_granted = len(scheduler.free_banks)
        runtime.serve(samples[:5])
        for pid in runtime.dispatcher._pids:
            if pid:
                os.kill(pid, signal.SIGKILL)
        runtime.close()
        assert runtime.name not in scheduler.resident
        assert len(scheduler.free_banks) > free_granted
        runtime.close()  # and closing again is a no-op


class TestSlabReclaim:
    """Generation-counter semantics of the slab pool (unit level)."""

    def test_reclaim_recovers_and_stale_release_ignored(self):
        pool = _SlabPool(replicas=1, slots=2, in_bytes=80, out_bytes=80)
        try:
            k0 = pool.acquire(0)
            k1 = pool.acquire(0)
            assert pool.acquire(0) is None
            assert pool.held_slots == 2
            assert pool.reclaim_replica(0) == 2
            assert pool.held_slots == 0
            # The pre-reclaim keys carry a stale generation: releasing
            # them must not double-free slots the next incarnation may
            # already hold.
            fresh = pool.acquire(0)
            pool.release(*k0)
            pool.release(*k1)
            assert pool.held_slots == 1  # only `fresh` is out
            assert pool.acquire(0) is not None
            assert pool.acquire(0) is None  # still only 2 slots
            pool.release(*fresh)
        finally:
            pool.close()

    def test_release_without_generation_is_legacy_path(self):
        pool = _SlabPool(replicas=1, slots=1, in_bytes=80, out_bytes=80)
        try:
            slab, slot, _gen = pool.acquire(0)
            pool.release(slab, slot)  # gen defaults to "don't check"
            assert pool.held_slots == 0
        finally:
            pool.close()
